"""SizeEstimator: the public facade of the size-estimation framework.

The advisor hands it batches of candidate compressed indexes; it plans a
SampleCF/deduction strategy under an (e, q) accuracy constraint, executes
the plan, and caches the resulting :class:`SizeEstimate` objects.  Partial
and MV indexes are estimated by SampleCF on filtered/MV samples directly
(Appendix B); plain table indexes flow through the deduction graph.

``use_deduction=False`` reproduces the paper's "DTAc w/o deduction"
baseline from Figure 11 (every index pays a SampleCF run).
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Iterable, Sequence

from repro.catalog.schema import Database
from repro.parallel.cache import EstimationCache
from repro.parallel.engine import ParallelEngine
from repro.parallel.signature import sample_fingerprint
from repro.physical.index_def import IndexDef
from repro.sampling.sample_manager import DEFAULT_FRACTIONS, SampleManager
from repro.sizeest.analytic import AnalyticSizer
from repro.sizeest.deduction import DeductionEngine, MultiColumnDistinct
from repro.sizeest.error_model import DEFAULT_ERROR_MODEL, ErrorModel, ErrorRV
from repro.sizeest.graph import NodeState, node_key
from repro.sizeest.planner import choose_plan, execute_plan
from repro.sizeest.samplecf import SampleCFRunner, SizeEstimate, index_category
from repro.stats.column_stats import DatabaseStats
from repro.storage.index_build import measure_structure, stored_columns
from repro.storage.rowcache import RID_COLUMN, SerializedTable

#: fault-injection hook (see :mod:`repro.service.faults`): rebound to
#: that module's ``fire`` when a plan is installed, None otherwise —
#: declared here so the estimator never imports the service package.
FAULT_HOOK = None


def _samplecf_task(estimator: "SizeEstimator", payload) -> SizeEstimate:
    """Worker task: one SampleCF build on the forked estimator state."""
    index, fraction = payload
    return estimator.runner.run(index, fraction)


class SizeEstimator:
    """Estimates (compressed) index sizes with tunable accuracy.

    Args:
        database: the database the indexes live on.
        stats: per-table statistics (built lazily when omitted).
        manager: the shared sample manager.
        error_model: fitted error coefficients.
        e, q: default accuracy constraint for batch planning.
        default_fraction: sampling fraction for one-off estimates.
        use_deduction: disable to force SampleCF on everything.
        cache: persistent estimate cache shared across runs (optional).
        engine: parallel engine for fanning SampleCF builds (optional).
    """

    def __init__(
        self,
        database: Database,
        stats: DatabaseStats | None = None,
        manager: SampleManager | None = None,
        error_model: ErrorModel = DEFAULT_ERROR_MODEL,
        e: float = 0.5,
        q: float = 0.9,
        default_fraction: float = 0.05,
        fractions: Sequence[float] = DEFAULT_FRACTIONS,
        use_deduction: bool = True,
        cache: EstimationCache | None = None,
        engine: ParallelEngine | None = None,
    ) -> None:
        self.database = database
        self.stats = stats or DatabaseStats(database)
        self.manager = manager or SampleManager(database)
        self.error_model = error_model
        self.e = e
        self.q = q
        self.default_fraction = default_fraction
        self.fractions = tuple(fractions)
        self.use_deduction = use_deduction
        self.cache = cache
        self.engine = engine
        self._fingerprint: str | None = None

        self.sizer = AnalyticSizer(database, self.stats, self.manager)
        self.runner = SampleCFRunner(self.manager, self.sizer, error_model)
        self.distinct = MultiColumnDistinct(database, self.manager)
        self.deduction = DeductionEngine(database, self.sizer, self.distinct)

        self._cache: dict[IndexDef, SizeEstimate] = {}
        #: samples published into the engine's shared-memory store (0
        #: until the first parallel fan-out; sequential runs never pay).
        self.shared_samples = 0
        self._shared_published = False
        self._existing: list[IndexDef] = []
        self._full_serialized: dict[str, SerializedTable] = {}
        #: planning/estimation wall-clock per category (Fig 11)
        self.timings: dict[str, float] = defaultdict(float)

    # ------------------------------------------------------------------
    def register_existing(self, indexes: Iterable[IndexDef]) -> None:
        """Declare indexes that already exist (exact size, zero cost)."""
        for index in indexes:
            self._existing.append(index)
            self._cache[index] = SizeEstimate(
                index=index,
                est_bytes=self.true_size(index),
                compression_fraction=1.0,
                source="exact",
                error=ErrorRV.exact(),
                cost=0.0,
            )

    # ------------------------------------------------------------------
    def uncompressed_bytes(self, index: IndexDef) -> float:
        """Analytic size of the uncompressed variant (always cheap)."""
        return self.sizer.uncompressed_bytes(index.uncompressed())

    def estimate(self, index: IndexDef) -> SizeEstimate:
        """Estimated size of one index (cached)."""
        cached = self._cache.get(index)
        if cached is not None:
            return cached
        if not index.method.is_compressed:
            est = SizeEstimate(
                index=index,
                est_bytes=self.sizer.uncompressed_bytes(index),
                compression_fraction=1.0,
                source="exact",
                error=ErrorRV.exact(),
                cost=0.0,
            )
        else:
            self.estimate_many([index])
            return self._cache[index]
        self._cache[index] = est
        return est

    def peek(self, index: IndexDef) -> SizeEstimate | None:
        """The estimate for ``index`` only if no new estimation *work*
        is needed: uncompressed indexes (pure analytic arithmetic, safe
        to compute at any time) and compressed indexes already in the
        in-memory cache.  Never consults the persistent cache and never
        plans a SampleCF batch, so calling it cannot change which
        estimates later batches compute or how deduction plans them —
        the property the advisor's pruning bounds rely on."""
        if not index.method.is_compressed:
            return self.estimate(index)
        return self._cache.get(index)

    @property
    def sample_fingerprint(self) -> str:
        """Digest of the sampled data + sampling seed (computed once);
        persisted estimate keys embed it, so estimates can never be
        replayed against changed data."""
        if self._fingerprint is None:
            self._fingerprint = sample_fingerprint(self.manager)
        return self._fingerprint

    def estimate_many(
        self,
        indexes: Sequence[IndexDef],
        e: float | None = None,
        q: float | None = None,
    ) -> dict[IndexDef, SizeEstimate]:
        """Plan + execute size estimation for a batch of indexes.

        Consults the persistent :class:`EstimationCache` first (when
        wired), fans SampleCF builds over the parallel engine (when
        wired and worth it), and stores fresh estimates back.
        """
        if FAULT_HOOK is not None:
            FAULT_HOOK("estimator.estimate", indexes=len(indexes))
        e = self.e if e is None else e
        q = self.q if q is None else q
        pending = list(dict.fromkeys(
            ix for ix in indexes
            if ix not in self._cache and ix.method.is_compressed
        ))
        new_compressed = bool(pending)
        for ix in indexes:
            if ix not in self._cache and not ix.method.is_compressed:
                self.estimate(ix)

        if self.cache is not None and pending:
            fingerprint = self.sample_fingerprint
            still_pending = []
            for ix in pending:
                hit = self.cache.get(ix, fingerprint, e, q)
                if hit is not None:
                    self._cache[ix] = hit
                else:
                    still_pending.append(ix)
            pending = still_pending

        # Partial and MV indexes: direct SampleCF on their special samples.
        direct = [ix for ix in pending if ix.is_partial or ix.is_mv_index]
        self._run_direct(direct)

        plain = [ix for ix in pending if not (ix.is_partial or ix.is_mv_index)]
        if plain:
            start = time.perf_counter()
            if self.use_deduction:
                result = choose_plan(
                    plain, self._existing, self.error_model, self.sizer,
                    self.manager, e, q, self.fractions, algorithm="greedy",
                )
                plan = result.plan
            else:
                result = choose_plan(
                    plain, self._existing, self.error_model, self.sizer,
                    self.manager, e, q, (self.default_fraction,),
                    algorithm="all",
                )
                plan = result.plan
            estimates = execute_plan(
                plan, self.runner, self.deduction, self.error_model,
                self.manager, exact_size_fn=self.true_size,
                precomputed=self._parallel_sampled(plan),
            )
            for ix in plain:
                key = node_key(ix)
                if key in estimates:
                    self._cache[ix] = SizeEstimate(
                        index=ix,
                        est_bytes=estimates[key].est_bytes,
                        compression_fraction=estimates[key].compression_fraction,
                        source=estimates[key].source,
                        error=estimates[key].error,
                        cost=estimates[key].cost,
                        fraction=estimates[key].fraction,
                    )
            self.timings["table"] += time.perf_counter() - start

        if self.cache is not None and pending:
            fingerprint = self.sample_fingerprint
            for ix in pending:
                est = self._cache.get(ix)
                if est is not None:
                    self.cache.put(ix, fingerprint, e, q, est)
            self.cache.save()

        if new_compressed and self.engine is not None:
            # Fresh compressed estimates postdate any dormant worker
            # pool: advisor-context sessions must re-fork so workers see
            # them (SampleCF sessions opt back in via stale_ok — their
            # tasks depend only on deterministic samples).
            self.engine.mark_dirty()

        return {ix: self._cache[ix] for ix in indexes}

    # ------------------------------------------------------------------
    def _parallelizable(self, count: int) -> bool:
        return (
            self.engine is not None
            and self.engine.parallel
            and not self.engine.in_session
            and count >= self.engine.min_batch
        )

    def _warm_sample_columns(self, index: IndexDef, fraction: float) -> None:
        """Materialize the stripped column blobs the SampleCF build of
        ``index`` will read.  Run in the parent before the fork so the
        blobs exist when :meth:`_share_samples_once` publishes — workers
        then map shared pages instead of each re-stripping its own
        heap-resident copy."""
        sample = self.runner._sample_for(index, fraction)
        for col in stored_columns(sample, index.kind, index.key_columns,
                                  index.included_columns):
            if col.name == RID_COLUMN.name:
                sample.rid_stripped()
            else:
                sample.stripped(col.name)

    def _share_samples_once(self) -> None:
        """Publish the manager's warmed samples into the engine's
        shared-memory store before the first fork, so workers map one
        segment instead of COW-duplicating heap value lists.  One-shot:
        samples warmed later travel through plain fork inheritance."""
        if self._shared_published or self.engine is None:
            return
        self._shared_published = True
        self.shared_samples = self.engine.share_samples(self.manager)

    def _run_direct(self, direct: list[IndexDef]) -> None:
        """SampleCF for partial/MV indexes, fanned out when worth it."""
        if not self._parallelizable(len(direct)):
            for ix in direct:
                start = time.perf_counter()
                self._cache[ix] = self.runner.run(ix, self.default_fraction)
                self.timings[index_category(ix)] += (
                    time.perf_counter() - start
                )
            return
        # Build the (partial/MV) samples in the parent so every worker
        # inherits them at fork instead of re-deriving its own copy.
        for ix in direct:
            self._warm_sample_columns(ix, self.default_fraction)
        self._share_samples_once()
        start = time.perf_counter()
        payloads = [(ix, self.default_fraction) for ix in direct]
        with self.engine.session(self, stale_ok=True):
            results = self.engine.map(_samplecf_task, payloads, context=self)
        elapsed = time.perf_counter() - start
        for ix, est in zip(direct, results):
            self._cache[ix] = est
            self.timings[index_category(ix)] += elapsed / len(direct)

    def _parallel_sampled(self, plan) -> dict | None:
        """Pre-execute a plan's SAMPLED leaves on the pool (the deduced
        nodes depend on them and stay sequential in the parent)."""
        sampled = [
            node.index
            for node in plan.graph.nodes.values()
            if node.state is NodeState.SAMPLED and not node.is_existing
        ]
        if not self._parallelizable(len(sampled)):
            return None
        for ix in sampled:
            # Parent-side sample warm-up, inherited by the fork below.
            self._warm_sample_columns(ix, plan.fraction)
        self._share_samples_once()
        payloads = [(ix, plan.fraction) for ix in sampled]
        with self.engine.session(self, stale_ok=True):
            results = self.engine.map(_samplecf_task, payloads, context=self)
        return {node_key(ix): est for ix, est in zip(sampled, results)}

    # ------------------------------------------------------------------
    def true_size(self, index: IndexDef) -> float:
        """Ground truth: build the structure on the FULL data and measure
        (used by experiments to quantify estimation error, and for
        existing indexes whose size the catalog would know)."""
        if index.is_mv_index or index.is_partial:
            serialized = self._full_structure_data(index)
        else:
            serialized = self._full_serialized.get(index.table)
            if serialized is None:
                serialized = SerializedTable(self.database.table(index.table))
                self._full_serialized[index.table] = serialized
        size = measure_structure(
            serialized, index.kind, index.key_columns,
            index.included_columns, index.method,
        )
        return float(size.total_bytes)

    def _full_structure_data(self, index: IndexDef) -> SerializedTable:
        """Materialize the full rows behind a partial index or MV."""
        from repro.sampling.mv_sample import build_mv_sample
        from repro.sampling.join_synopsis import build_join_synopsis

        if index.is_partial:
            table = self.database.table(index.table)
            out = table.empty_clone(f"{index.table}_full_filtered")
            names = table.column_names
            for raw in table.iter_rows():
                row = dict(zip(names, raw))
                if index.filter.evaluate(row):
                    out.append_row(raw)
            return SerializedTable(out)
        mv = index.mv
        fact = self.database.table(mv.fact_table)
        synopsis = build_join_synopsis(self.database, fact, mv.fact_table)
        sample = build_mv_sample(
            self.database, mv, synopsis, synopsis.num_rows, 1.0
        )
        return SerializedTable(sample.table)

    def reset_instrumentation(self) -> None:
        self.timings.clear()
        self.runner.reset_timings()
        self.manager.reset_timings()
