"""Exact graph-search algorithm (Appendix D's Optimal).

Finds the cost-minimal assignment of SAMPLED/DEDUCED states satisfying
the (e, q) constraint, by branch and bound over per-target options with
shared sampled children.

Search space note: plans are restricted to *leaf-sampled* deduction
chains — a DEDUCED node's children are SAMPLED (or existing), never
themselves DEDUCED.  This loses no sampling cost: the ColExt partition
space is closed under refinement, so any deeper chain (e.g. A+B -> AB,
then AB+C -> ABC) has a one-step counterpart over the same sampled
leaves (A+B+C -> ABC); only the error composition differs slightly.
Within that space the search is exhaustive and exact, which is how the
Table 4 experiment can afford to run it at every sampling fraction
(the unrestricted recursion, like the paper's, "does not finish in
hours" beyond toy sizes).
"""

from __future__ import annotations

import math

from repro.errors import SizeEstimationError
from repro.sizeest.error_model import ErrorRV
from repro.sizeest.graph import DeductionNode, NodeKey, NodeState
from repro.sizeest.plan import EstimationPlan, PlanEvaluator, finalize_plan


def plan_optimal(
    evaluator: PlanEvaluator,
    e: float,
    q: float,
    node_limit: int = 200,
) -> EstimationPlan:
    """Cost-minimal feasible plan (exact over leaf-sampled chains).

    Args:
        evaluator: wraps the graph (targets/existing added), error model
            and sampling fraction.
        e, q: the accuracy constraint.
        node_limit: safety valve on the expanded graph size.
    """
    graph = evaluator.graph
    targets = sorted(
        (n.key for n in graph.targets()),
        key=lambda k: (-len(k[2]), k[2], k[0], k[1], k[3].value),
    )
    for key in list(targets):
        graph.expand_node(key)
    if len(graph.nodes) > node_limit:
        raise SizeEstimationError(
            f"optimal search over {len(graph.nodes)} nodes exceeds the "
            f"limit of {node_limit}"
        )

    target_set = set(targets)

    def child_rv(key: NodeKey) -> ErrorRV:
        return (
            ErrorRV.exact()
            if graph.nodes[key].is_existing
            else evaluator.sampled_rv(key)
        )

    # Per-target options: ('S', None, ()) or ('D', deduction, children
    # that must be sampled).  Options are pre-filtered for feasibility.
    options: dict[NodeKey, list[tuple[str, DeductionNode | None,
                                      tuple[NodeKey, ...]]]] = {}
    for key in targets:
        opts = []
        for ded in graph.deductions.get(key, ()):
            rvs = [child_rv(c) for c in ded.children]
            rvs.append(evaluator.deduction_rv(ded))
            if ErrorRV.product(rvs).prob_within(e) >= q:
                need = tuple(
                    c for c in ded.children
                    if not graph.nodes[c].is_existing
                )
                opts.append(("D", ded, need))
        if (
            graph.nodes[key].is_existing
            or evaluator.sampled_rv(key).prob_within(e) >= q
        ):
            opts.append(("S", None, (key,)))
        options[key] = opts

    infeasible = [k for k, o in options.items() if not o]

    best_cost = math.inf
    best_choice: dict[NodeKey, tuple] | None = None
    choice: dict[NodeKey, tuple] = {}

    def cost_of(sample_set: frozenset[NodeKey]) -> float:
        return sum(evaluator.sampling_cost(k) for k in sample_set)

    def rec(i: int, sampled: frozenset[NodeKey], cost: float) -> None:
        nonlocal best_cost, best_choice
        if cost >= best_cost:
            return
        if i == len(targets):
            best_cost = cost
            best_choice = dict(choice)
            return
        key = targets[i]
        if key in sampled:
            # Already paid for as someone's child: keep it sampled.
            choice[key] = ("S", None, (key,))
            rec(i + 1, sampled, cost)
            del choice[key]
            return
        # Cheapest-delta options first so good incumbents appear early.
        ranked = sorted(
            options[key],
            key=lambda opt: sum(
                evaluator.sampling_cost(c)
                for c in opt[2]
                if c not in sampled
            ),
        )
        for opt in ranked:
            extra = [c for c in opt[2] if c not in sampled]
            delta = sum(evaluator.sampling_cost(c) for c in extra)
            choice[key] = opt
            rec(i + 1, sampled | frozenset(extra), cost + delta)
            del choice[key]

    if not infeasible:
        rec(0, frozenset(), 0.0)

    if best_choice is None:
        # No feasible plan at this fraction: fall back to sampling every
        # target so the caller sees the infeasibility in the plan.
        best_choice = {k: ("S", None, (k,)) for k in targets}

    # Apply the winning assignment to the graph.
    for node in graph.nodes.values():
        if not node.is_existing:
            node.state = NodeState.NONE
        node.chosen_deduction = None
    sampled_children: set[NodeKey] = set()
    for key, (kind, ded, need) in best_choice.items():
        node = graph.nodes[key]
        if kind == "S":
            node.state = NodeState.SAMPLED
        else:
            node.state = NodeState.DEDUCED
            node.chosen_deduction = ded
            sampled_children.update(need)
    for key in sampled_children:
        node = graph.nodes[key]
        if node.state is NodeState.NONE:
            node.state = NodeState.SAMPLED
    return finalize_plan(evaluator, e, q)
