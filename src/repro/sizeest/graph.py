"""The index/deduction graph of Section 5.2 (Figure 3).

Index nodes represent size estimations for compressed indexes and carry
one of three states — NONE, SAMPLED, DEDUCED.  Deduction nodes connect a
parent index node to the child index nodes its size can be deduced from;
a deduction is enabled only when every child is decided.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.compression.base import CompressionMethod
from repro.errors import SizeEstimationError
from repro.physical.index_def import IndexDef
from repro.storage.index_build import IndexKind


class NodeState(enum.Enum):
    NONE = "none"
    SAMPLED = "sampled"
    DEDUCED = "deduced"


#: Node identity: (table, kind tag, column sequence, method).  The kind
#: tag separates base structures (heap/clustered — which store *every*
#: table column) from secondary indexes on the same key columns.
#: Deductions only apply to plain (non-partial, non-MV) indexes; partial
#: and MV indexes always go through SampleCF.
NodeKey = tuple[str, str, tuple[str, ...], CompressionMethod]

#: Kind tag: every base structure stores the full column set, so heaps
#: and clustered indexes share one tag class for ColSet purposes.
_BASE_KINDS = (IndexKind.HEAP, IndexKind.CLUSTERED)


def node_key(index: IndexDef) -> NodeKey:
    if index.is_partial or index.is_mv_index:
        raise SizeEstimationError(
            "deduction graph holds plain table indexes only"
        )
    tag = "base" if index.kind in _BASE_KINDS else "sec"
    return (index.table, tag, index.column_sequence, index.method)


@dataclass
class DeductionNode:
    """A possible deduction: estimate ``parent`` from ``children``."""

    kind: str  # 'colset' | 'colext'
    parent: NodeKey
    children: tuple[NodeKey, ...]

    @property
    def arity(self) -> int:
        """The 'a' of the error model: #indexes extrapolated from."""
        return len(self.children)


@dataclass
class IndexNode:
    """One size-estimation decision in the graph."""

    key: NodeKey
    index: IndexDef
    state: NodeState = NodeState.NONE
    is_target: bool = False
    is_existing: bool = False
    chosen_deduction: DeductionNode | None = None

    @property
    def width(self) -> int:
        return len(self.key[2])


class EstimationGraph:
    """Holds index nodes and their candidate deductions.

    Args:
        max_segments: ColExt partitions split the column sequence into at
            most this many contiguous segments.
    """

    def __init__(self, max_segments: int = 3) -> None:
        self.nodes: dict[NodeKey, IndexNode] = {}
        self.deductions: dict[NodeKey, list[DeductionNode]] = {}
        self.max_segments = max_segments

    # ------------------------------------------------------------------
    def add_index(
        self,
        index: IndexDef,
        is_target: bool = False,
        is_existing: bool = False,
    ) -> IndexNode:
        key = node_key(index)
        node = self.nodes.get(key)
        if node is None:
            node = IndexNode(key=key, index=index)
            self.nodes[key] = node
        node.is_target = node.is_target or is_target
        if is_existing:
            node.is_existing = True
            node.state = NodeState.SAMPLED  # known exactly from catalog
        return node

    def node(self, key: NodeKey) -> IndexNode:
        return self.nodes[key]

    # ------------------------------------------------------------------
    def _child_index(self, parent: IndexDef,
                     columns: tuple[str, ...]) -> IndexDef:
        """A helper index over a column segment of the parent."""
        return IndexDef(
            table=parent.table,
            key_columns=columns,
            kind=IndexKind.SECONDARY,
            method=parent.method,
        )

    def expand_node(self, key: NodeKey) -> list[DeductionNode]:
        """Create this node's deduction candidates (and their children).

        ColSet children: other nodes already in the graph with the same
        column set and method (ORD-IND only).  ColExt children: indexes on
        the contiguous segments of the column sequence.
        """
        if key in self.deductions:
            return self.deductions[key]
        node = self.nodes[key]
        out: list[DeductionNode] = []
        table, tag, columns, method = key

        if method.is_order_independent:
            colset = frozenset(columns)
            for other_key, other in list(self.nodes.items()):
                if other_key == key:
                    continue
                o_table, o_tag, o_columns, o_method = other_key
                if o_table != table or o_method is not method:
                    continue
                if tag == "base":
                    # Every base structure stores the table's full column
                    # set: any two are ColSet-equivalent (the paper's
                    # clustered-index observation in Section 4.2).
                    if o_tag == "base":
                        out.append(
                            DeductionNode("colset", key, (other_key,))
                        )
                elif o_tag == "sec" and frozenset(o_columns) == colset:
                    out.append(DeductionNode("colset", key, (other_key,)))

        # ColExt over column segments: secondary indexes only (a base
        # structure's stored columns are the whole table, not its key).
        if tag == "sec" and len(columns) >= 2 and method.is_compressed:
            for partition in _segment_partitions(columns, self.max_segments):
                children = []
                for segment in partition:
                    child = self._child_index(node.index, segment)
                    self.add_index(child)
                    children.append(node_key(child))
                out.append(DeductionNode("colext", key, tuple(children)))

        self.deductions[key] = out
        return out

    # ------------------------------------------------------------------
    def targets(self) -> list[IndexNode]:
        return [n for n in self.nodes.values() if n.is_target]

    def decided(self, key: NodeKey) -> bool:
        return self.nodes[key].state is not NodeState.NONE

    def prune_unused(self) -> None:
        """Remove helper nodes no chosen deduction references (the final
        step of the paper's greedy algorithm): wider to narrower."""
        used: set[NodeKey] = set()
        for node in self.nodes.values():
            if node.is_target or node.is_existing:
                used.add(node.key)
        changed = True
        while changed:
            changed = False
            for node in self.nodes.values():
                if node.key in used and node.chosen_deduction is not None:
                    for child in node.chosen_deduction.children:
                        if child not in used:
                            used.add(child)
                            changed = True
        for key in list(self.nodes):
            if key not in used:
                del self.nodes[key]
                self.deductions.pop(key, None)


def _segment_partitions(
    columns: tuple[str, ...], max_segments: int
) -> list[tuple[tuple[str, ...], ...]]:
    """All partitions of ``columns`` into 2..max_segments contiguous,
    order-preserving segments (A+B, AB+C, A+B+C, ...)."""
    n = len(columns)
    out: list[tuple[tuple[str, ...], ...]] = []

    def rec(start: int, parts: list[tuple[str, ...]]) -> None:
        if start == n:
            if len(parts) >= 2:
                out.append(tuple(parts))
            return
        if len(parts) == max_segments:
            return
        for end in range(start + 1, n + 1):
            parts.append(columns[start:end])
            rec(end, parts)
            parts.pop()

    rec(0, [])
    return out
