"""Sampling-fraction selection and plan execution (Section 5.2, last
paragraph): try several fractions, run the graph algorithm at each, and
keep the cheapest feasible plan; then execute the plan — SampleCF for
SAMPLED nodes, deduction for DEDUCED nodes — producing size estimates."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.errors import SizeEstimationError
from repro.physical.index_def import IndexDef
from repro.sampling.sample_manager import DEFAULT_FRACTIONS, SampleManager
from repro.sizeest.analytic import AnalyticSizer
from repro.sizeest.deduction import DeductionEngine
from repro.sizeest.error_model import ErrorModel, ErrorRV
from repro.sizeest.graph import EstimationGraph, NodeKey, NodeState, node_key
from repro.sizeest.greedy import plan_all_sampled, plan_greedy
from repro.sizeest.optimal import plan_optimal
from repro.sizeest.plan import EstimationPlan, PlanEvaluator
from repro.sizeest.samplecf import SampleCFRunner, SizeEstimate

ALGORITHMS: dict[str, Callable] = {
    "greedy": plan_greedy,
    "all": plan_all_sampled,
    "optimal": plan_optimal,
}


@dataclass(frozen=True)
class PlannerResult:
    """The chosen plan plus the per-fraction costs that were considered."""

    plan: EstimationPlan
    considered: dict[float, float]  # fraction -> cost (inf if infeasible)


def _build_graph(
    targets: Sequence[IndexDef],
    existing: Sequence[IndexDef],
) -> EstimationGraph:
    graph = EstimationGraph()
    for index in existing:
        graph.add_index(index, is_existing=True)
    for index in targets:
        graph.add_index(index, is_target=True)
    return graph


def choose_plan(
    targets: Sequence[IndexDef],
    existing: Sequence[IndexDef],
    error_model: ErrorModel,
    sizer: AnalyticSizer,
    manager: SampleManager,
    e: float,
    q: float,
    fractions: Iterable[float] = DEFAULT_FRACTIONS,
    algorithm: str = "greedy",
) -> PlannerResult:
    """Run the graph algorithm at each fraction; keep the cheapest
    feasible plan (or the least-infeasible one when none satisfies the
    constraint, mirroring the paper's observation that some (f, e, q)
    combinations are invalid)."""
    if algorithm not in ALGORITHMS:
        raise SizeEstimationError(f"unknown planning algorithm {algorithm!r}")
    planner = ALGORITHMS[algorithm]
    best: EstimationPlan | None = None
    fallback: EstimationPlan | None = None
    considered: dict[float, float] = {}
    for fraction in fractions:
        graph = _build_graph(targets, existing)
        evaluator = PlanEvaluator(graph, error_model, sizer, manager, fraction)
        plan = planner(evaluator, e, q)
        considered[fraction] = plan.total_cost if plan.feasible else float("inf")
        if plan.feasible:
            if best is None or plan.total_cost < best.total_cost:
                best = plan
        elif fallback is None or _infeasibility(plan) < _infeasibility(fallback):
            fallback = plan
    chosen = best if best is not None else fallback
    if chosen is None:
        raise SizeEstimationError("no sampling fraction produced a plan")
    return PlannerResult(plan=chosen, considered=considered)


def _infeasibility(plan: EstimationPlan) -> float:
    """How far a plan misses its probability targets (lower is better)."""
    return -sum(plan.target_probabilities.values())


def execute_plan(
    plan: EstimationPlan,
    runner: SampleCFRunner,
    deduction: DeductionEngine,
    error_model: ErrorModel,
    manager: SampleManager,
    exact_size_fn: Callable[[IndexDef], float] | None = None,
    precomputed: dict[NodeKey, SizeEstimate] | None = None,
) -> dict[NodeKey, SizeEstimate]:
    """Run SampleCF / deductions per the plan, bottom-up.

    Returns estimates for every node remaining in the (pruned) graph;
    callers pick out their targets by :func:`node_key`.

    Args:
        precomputed: SampleCF results for (non-existing) SAMPLED nodes
            produced elsewhere — e.g. fanned over a worker pool — keyed
            by :func:`node_key`; the plan walk consumes them instead of
            re-running SampleCF.
    """
    graph = plan.graph
    estimates: dict[NodeKey, SizeEstimate] = {}
    if precomputed:
        estimates.update(precomputed)

    def resolve(key: NodeKey) -> SizeEstimate:
        cached = estimates.get(key)
        if cached is not None:
            return cached
        node = graph.nodes[key]
        if node.is_existing:
            # Catalog knows an existing index's size exactly (zero
            # estimation cost, zero error).
            if exact_size_fn is not None:
                truth = exact_size_fn(node.index)
            else:
                truth = runner.sizer.uncompressed_bytes(node.index)
            est = SizeEstimate(
                index=node.index,
                est_bytes=truth,
                compression_fraction=1.0,
                source="exact",
                error=ErrorRV.exact(),
                cost=0.0,
            )
        elif node.state is NodeState.SAMPLED:
            est = runner.run(node.index, plan.fraction)
        elif node.state is NodeState.DEDUCED:
            ded = node.chosen_deduction
            children = [resolve(c) for c in ded.children]
            if ded.kind == "colset":
                est_bytes = deduction.colset(node.index, children[0])
                rv_own = error_model.colset_rv(node.index.method)
            else:
                est_bytes = deduction.colext(node.index, children)
                rv_own = error_model.colext_rv(node.index.method, ded.arity)
            rv = ErrorRV.product([c.error for c in children] + [rv_own])
            u = runner.sizer.uncompressed_bytes(node.index)
            est = SizeEstimate(
                index=node.index,
                est_bytes=est_bytes,
                compression_fraction=est_bytes / u if u else 1.0,
                source=ded.kind,
                error=rv,
                cost=0.0,
            )
        else:
            raise SizeEstimationError(f"undecided node {key} in plan")
        estimates[key] = est
        return est

    for key in list(graph.nodes):
        resolve(key)
    return estimates
