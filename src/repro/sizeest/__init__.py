"""Size estimation: SampleCF, deductions, error model, graph search."""

from repro.sizeest.analytic import AnalyticSizer
from repro.sizeest.calibration import (
    CalibrationReport,
    calibrate_error_model,
)
from repro.sizeest.deduction import DeductionEngine, MultiColumnDistinct
from repro.sizeest.error_model import (
    DEFAULT_ERROR_MODEL,
    ErrorModel,
    ErrorRV,
)
from repro.sizeest.estimator import SizeEstimator
from repro.sizeest.graph import (
    DeductionNode,
    EstimationGraph,
    IndexNode,
    NodeState,
    node_key,
)
from repro.sizeest.greedy import plan_all_sampled, plan_greedy
from repro.sizeest.optimal import plan_optimal
from repro.sizeest.plan import EstimationPlan, PlanEvaluator, finalize_plan
from repro.sizeest.planner import PlannerResult, choose_plan, execute_plan
from repro.sizeest.samplecf import SampleCFRunner, SizeEstimate

__all__ = [
    "AnalyticSizer",
    "calibrate_error_model",
    "CalibrationReport",
    "SampleCFRunner",
    "SizeEstimate",
    "DeductionEngine",
    "MultiColumnDistinct",
    "ErrorRV",
    "ErrorModel",
    "DEFAULT_ERROR_MODEL",
    "EstimationGraph",
    "IndexNode",
    "DeductionNode",
    "NodeState",
    "node_key",
    "PlanEvaluator",
    "EstimationPlan",
    "finalize_plan",
    "plan_greedy",
    "plan_all_sampled",
    "plan_optimal",
    "choose_plan",
    "execute_plan",
    "PlannerResult",
    "SizeEstimator",
]
