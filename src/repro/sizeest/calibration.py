"""Error-model calibration: re-fit the coefficients of
:class:`~repro.sizeest.error_model.ErrorModel` from measurements on a
concrete database.

The paper ships fitted coefficients (its Tables 2/3) and notes the
framework works for any estimation method "if their errors can be
characterized by parametric distributions with a given bias and
variance".  This module is the library-side fitter: it measures SampleCF
and deduction errors against full-build ground truths over an index
population and returns a calibrated :class:`ErrorModel`, so users can
point the framework at their own data.

This is exactly what the Table 2 / Table 3 experiments run; they share
this implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.catalog.schema import Database
from repro.compression.base import CompressionMethod
from repro.errors import SizeEstimationError
from repro.physical.index_def import IndexDef
from repro.sizeest.error_model import ErrorModel
from repro.storage.index_build import IndexKind

#: Default sampling-fraction grid for SampleCF calibration.
CALIBRATION_FRACTIONS = (0.01, 0.025, 0.05, 0.10)


def _fit_through_origin(xs: Sequence[float], ys: Sequence[float]) -> float:
    sxy = sum(x * y for x, y in zip(xs, ys))
    sxx = sum(x * x for x in xs)
    return sxy / sxx if sxx else 0.0


def _stats(errors: Sequence[float]) -> tuple[float, float]:
    n = len(errors)
    if n == 0:
        return 0.0, 0.0
    mean = sum(errors) / n
    var = sum((e - mean) ** 2 for e in errors) / max(1, n - 1)
    return mean, math.sqrt(var)


@dataclass(frozen=True)
class CalibrationReport:
    """A fitted model plus the raw measurements that produced it.

    Attributes:
        model: the calibrated error model.
        samplecf_errors: {(class, fraction): [est/true - 1, ...]}.
        colext_errors: {(class, a): [...]}; colset_errors: [...].
    """

    model: ErrorModel
    samplecf_errors: Mapping[tuple, list]
    colext_errors: Mapping[tuple, list]
    colset_errors: list

    def summary(self) -> str:
        m = self.model
        lines = ["calibrated error model:"]
        for cls in ("NS", "LD"):
            lines.append(
                f"  SampleCF[{cls}]: bias={m.samplecf_bias[cls]:+.4f}·(-ln f)"
                f", std={m.samplecf_std[cls]:.4f}·(-ln f)"
            )
            lines.append(
                f"  ColExt[{cls}]:   bias={m.colext_bias[cls]:+.4f}·a, "
                f"std={m.colext_std[cls]:.4f}·a"
            )
        lines.append(
            f"  ColSet: bias={m.colset_bias['NS']:+.5f}, "
            f"std={m.colset_std['NS']:.5f}"
        )
        return "\n".join(lines)


def calibrate_error_model(
    database: Database,
    keysets: Mapping[str, Sequence[Sequence[str]]],
    fractions: Sequence[float] = CALIBRATION_FRACTIONS,
    min_sample_rows: int = 50,
) -> CalibrationReport:
    """Measure estimation errors on ``database`` and fit an ErrorModel.

    Args:
        database: the database to calibrate on.
        keysets: per-table key-column lists defining the index
            population (composites of length >= 2 also feed the
            deduction fits).
        fractions: SampleCF sampling fractions to measure at.
        min_sample_rows: sample-size floor for the internal manager.

    Returns:
        A :class:`CalibrationReport`; use ``report.model`` as the
        ``error_model`` argument of :class:`~repro.sizeest.SizeEstimator`.
    """
    # Local import: the experiments' ErrorLab already packages exactly
    # the measurement machinery needed here.
    from repro.experiments.samplecf_errors import ErrorLab

    if not keysets:
        raise SizeEstimationError("calibration needs a non-empty keyset map")
    lab = ErrorLab(database)
    lab.manager.min_sample_rows = min_sample_rows

    population: list[IndexDef] = []
    for table, keys in keysets.items():
        for cols in keys:
            for method in (CompressionMethod.ROW, CompressionMethod.PAGE):
                population.append(
                    IndexDef(table, tuple(cols), kind=IndexKind.SECONDARY,
                             method=method)
                )

    # SampleCF errors per (class, fraction).
    samplecf: dict[tuple, list] = {}
    for f in fractions:
        for ix in population:
            cls = "NS" if ix.method is CompressionMethod.ROW else "LD"
            err = lab.samplecf_error(ix, f)
            samplecf.setdefault((cls, f), []).append(err)

    # Deduction errors per (class, a), plus ColSet (NS only).
    colext: dict[tuple, list] = {}
    colset: list[float] = []
    for ix in population:
        if len(ix.key_columns) < 2:
            continue
        cls = "NS" if ix.method is CompressionMethod.ROW else "LD"
        a = len(ix.key_columns)
        colext.setdefault((cls, a), []).append(lab.colext_error(ix))
        if cls == "NS":
            colset.append(lab.colset_error(ix))

    # Fit SampleCF coefficients: statistic = c * (-ln f).
    samplecf_bias: dict[str, float] = {}
    samplecf_std: dict[str, float] = {}
    for cls in ("NS", "LD"):
        xs, bias_ys, std_ys = [], [], []
        for f in fractions:
            errors = samplecf.get((cls, f), [])
            bias, std = _stats(errors)
            xs.append(-math.log(f))
            bias_ys.append(bias)
            std_ys.append(std)
        samplecf_bias[cls] = _fit_through_origin(xs, bias_ys)
        samplecf_std[cls] = max(1e-4, _fit_through_origin(xs, std_ys))

    # Fit ColExt coefficients: statistic = c * a.
    colext_bias: dict[str, float] = {}
    colext_std: dict[str, float] = {}
    for cls in ("NS", "LD"):
        xs, bias_ys, std_ys = [], [], []
        for (c, a), errors in sorted(colext.items()):
            if c != cls:
                continue
            bias, std = _stats(errors)
            xs.append(float(a))
            bias_ys.append(bias)
            std_ys.append(std)
        colext_bias[cls] = _fit_through_origin(xs, bias_ys)
        colext_std[cls] = max(1e-4, _fit_through_origin(xs, std_ys))

    cs_bias, cs_std = _stats(colset)
    model = ErrorModel(
        samplecf_bias=samplecf_bias,
        samplecf_std=samplecf_std,
        colset_bias={"NS": cs_bias, "LD": cs_bias},
        colset_std={"NS": max(1e-5, cs_std), "LD": max(1e-5, cs_std)},
        colext_bias=colext_bias,
        colext_std=colext_std,
    )
    return CalibrationReport(
        model=model,
        samplecf_errors=samplecf,
        colext_errors=colext,
        colset_errors=colset,
    )
