"""Estimation-plan representation and error/cost evaluation shared by the
greedy (Section 5.2) and optimal (Appendix D) graph algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SizeEstimationError
from repro.sampling.sample_manager import SampleManager
from repro.sizeest.analytic import AnalyticSizer
from repro.sizeest.error_model import ErrorModel, ErrorRV
from repro.sizeest.graph import (
    DeductionNode,
    EstimationGraph,
    NodeKey,
    NodeState,
)


class PlanEvaluator:
    """Computes composed error RVs and sampling costs over a graph whose
    node states / chosen deductions describe a (partial) plan."""

    def __init__(
        self,
        graph: EstimationGraph,
        error_model: ErrorModel,
        sizer: AnalyticSizer,
        manager: SampleManager,
        fraction: float,
    ) -> None:
        self.graph = graph
        self.error_model = error_model
        self.sizer = sizer
        self.manager = manager
        self.fraction = fraction

    # ------------------------------------------------------------------
    def sampled_rv(self, key: NodeKey) -> ErrorRV:
        table, _tag, _cols, method = key
        node = self.graph.nodes[key]
        if node.is_existing:
            return ErrorRV.exact()
        eff = self.manager.effective_fraction(table, self.fraction)
        return self.error_model.samplecf_rv(method, eff)

    def deduction_rv(self, deduction: DeductionNode) -> ErrorRV:
        _table, _tag, _cols, method = deduction.parent
        if deduction.kind == "colset":
            return self.error_model.colset_rv(method)
        return self.error_model.colext_rv(method, deduction.arity)

    def node_error(self, key: NodeKey,
                   _seen: frozenset = frozenset()) -> ErrorRV:
        """Composed error RV of a decided node."""
        if key in _seen:
            raise SizeEstimationError(f"deduction cycle at {key}")
        node = self.graph.nodes[key]
        if node.state is NodeState.SAMPLED:
            return self.sampled_rv(key)
        if node.state is NodeState.DEDUCED:
            ded = node.chosen_deduction
            if ded is None:
                raise SizeEstimationError(f"DEDUCED node {key} lacks a deduction")
            parts = [
                self.node_error(child, _seen | {key})
                for child in ded.children
            ]
            parts.append(self.deduction_rv(ded))
            return ErrorRV.product(parts)
        raise SizeEstimationError(f"node {key} is undecided")

    def deduced_error(self, deduction: DeductionNode) -> ErrorRV:
        """What the parent's error would be under ``deduction`` (children
        must be decided)."""
        parts = [self.node_error(c) for c in deduction.children]
        parts.append(self.deduction_rv(deduction))
        return ErrorRV.product(parts)

    # ------------------------------------------------------------------
    def sampling_cost(self, key: NodeKey) -> float:
        node = self.graph.nodes[key]
        if node.is_existing:
            return 0.0
        return self.sizer.samplecf_cost(node.index, self.fraction)

    def total_cost(self) -> float:
        return sum(
            self.sampling_cost(key)
            for key, node in self.graph.nodes.items()
            if node.state is NodeState.SAMPLED and not node.is_existing
        )


@dataclass
class EstimationPlan:
    """Outcome of planning: states/deductions live in ``graph``.

    Attributes:
        graph: the (pruned) graph holding per-node decisions.
        fraction: sampling fraction the plan assumes.
        total_cost: sum of SampleCF costs of all sampled nodes.
        feasible: every target satisfies the (e, q) constraint.
        target_probabilities: per-target P(error <= e).
    """

    graph: EstimationGraph
    fraction: float
    total_cost: float
    feasible: bool
    target_probabilities: dict[NodeKey, float] = field(default_factory=dict)

    @property
    def sampled_keys(self) -> list[NodeKey]:
        return [
            k
            for k, n in self.graph.nodes.items()
            if n.state is NodeState.SAMPLED and not n.is_existing
        ]

    @property
    def deduced_keys(self) -> list[NodeKey]:
        return [
            k
            for k, n in self.graph.nodes.items()
            if n.state is NodeState.DEDUCED
        ]


def finalize_plan(
    evaluator: PlanEvaluator,
    e: float,
    q: float,
) -> EstimationPlan:
    """Prune the graph, total the cost, and check target feasibility."""
    graph = evaluator.graph
    graph.prune_unused()
    probs: dict[NodeKey, float] = {}
    feasible = True
    for node in graph.targets():
        prob = evaluator.node_error(node.key).prob_within(e)
        probs[node.key] = prob
        if prob < q:
            feasible = False
    return EstimationPlan(
        graph=graph,
        fraction=evaluator.fraction,
        total_cost=evaluator.total_cost(),
        feasible=feasible,
        target_probabilities=probs,
    )
