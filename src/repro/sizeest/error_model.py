"""Stochastic error model for size estimation (Section 5.1, Appendix C).

Each estimation step is modelled by a random variable ``X`` = estimated
size / true size (``X = 1`` is perfect).  SampleCF errors shrink with the
sampling fraction ``f`` (bias and stddev fit ``-c * ln f``, Table 2);
deduction errors grow linearly with the number of extrapolated indexes
``a`` (Table 3).  Estimates that feed other estimates *compose*: the
result is the product of the input RVs and the deduction's own RV, whose
variance follows Goodman's variance-of-a-product formula.

The accuracy requirement "(error <= e) with probability >= q" is evaluated
as the mass a normal distribution with the composed bias/variance places
on the interval [1/(1+e), 1+e] — Appendix C observed errors to be close to
normal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.compression.base import CompressionMethod
from repro.errors import SizeEstimationError


def _phi(z: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


@dataclass(frozen=True)
class ErrorRV:
    """Mean/variance of an estimation ratio random variable."""

    mean: float
    var: float

    @staticmethod
    def exact() -> "ErrorRV":
        """A perfectly known size (existing index, catalog lookup)."""
        return ErrorRV(mean=1.0, var=0.0)

    @staticmethod
    def product(factors: Iterable["ErrorRV"]) -> "ErrorRV":
        """Product of independent ratio RVs (Goodman 1962):

        E[prod] = prod E_i;  V[prod] = prod(V_i + E_i^2) - prod(E_i^2)
        """
        mean = 1.0
        second = 1.0
        for rv in factors:
            mean *= rv.mean
            second *= rv.var + rv.mean * rv.mean
        return ErrorRV(mean=mean, var=max(0.0, second - mean * mean))

    def prob_within(self, e: float) -> float:
        """P(1/(1+e) <= X <= 1+e) under a normal approximation."""
        if e < 0:
            raise SizeEstimationError(f"error tolerance {e} must be >= 0")
        lo = 1.0 / (1.0 + e)
        hi = 1.0 + e
        sd = math.sqrt(self.var)
        if sd == 0.0:
            return 1.0 if lo <= self.mean <= hi else 0.0
        return _phi((hi - self.mean) / sd) - _phi((lo - self.mean) / sd)


def _error_class(method: CompressionMethod) -> str:
    """Map a compression package to its error-parameter class.

    ORD-IND packages behave like NULL suppression ("NS"); ORD-DEP packages
    like local dictionary ("LD") — the two classes Appendix C fits.
    """
    if not method.is_compressed:
        return "NS"
    return "LD" if method.is_order_dependent else "NS"


@dataclass(frozen=True)
class ErrorModel:
    """Fitted error-model coefficients.

    SampleCF: bias = -bias_coef * ln(f); stddev = -std_coef * ln(f).
    ColSet:   constant bias/stddev.
    ColExt:   bias = bias_coef * a; stddev = std_coef * a  (``a`` = number
    of indexes extrapolated from).

    Defaults are the paper's Table 2 (TPC-H Z=0 row) and Table 3 values;
    :mod:`repro.experiments.table2_error_fit` re-fits them on this
    substrate.
    """

    samplecf_bias: dict = field(
        default_factory=lambda: {"NS": 0.0, "LD": 0.015}
    )
    samplecf_std: dict = field(
        default_factory=lambda: {"NS": 0.0062, "LD": 0.018}
    )
    colset_bias: dict = field(default_factory=lambda: {"NS": 0.0, "LD": 0.0})
    colset_std: dict = field(
        default_factory=lambda: {"NS": 0.0003, "LD": 0.0003}
    )
    colext_bias: dict = field(
        default_factory=lambda: {"NS": 0.01, "LD": -0.03}
    )
    colext_std: dict = field(
        default_factory=lambda: {"NS": 0.002, "LD": 0.01}
    )

    # ------------------------------------------------------------------
    def samplecf_rv(self, method: CompressionMethod, fraction: float) -> ErrorRV:
        """Error RV of one SampleCF run at sampling fraction ``fraction``."""
        if not 0.0 < fraction <= 1.0:
            raise SizeEstimationError(f"fraction {fraction} not in (0, 1]")
        cls = _error_class(method)
        log_term = -math.log(fraction)
        bias = self.samplecf_bias[cls] * log_term
        std = self.samplecf_std[cls] * log_term
        return ErrorRV(mean=1.0 + bias, var=std * std)

    def colset_rv(self, method: CompressionMethod) -> ErrorRV:
        """Error RV of a column-set deduction step."""
        cls = _error_class(method)
        std = self.colset_std[cls]
        return ErrorRV(mean=1.0 + self.colset_bias[cls], var=std * std)

    def colext_rv(self, method: CompressionMethod, a: int) -> ErrorRV:
        """Error RV of a column-extrapolation step from ``a`` indexes."""
        if a < 1:
            raise SizeEstimationError("ColExt needs at least one source")
        cls = _error_class(method)
        bias = self.colext_bias[cls] * a
        std = self.colext_std[cls] * a
        return ErrorRV(mean=1.0 + bias, var=std * std)


DEFAULT_ERROR_MODEL = ErrorModel()
