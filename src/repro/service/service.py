"""The async tuning service: concurrent requests over one optimizer.

Commercial what-if tuners run as long-lived services multiplexing many
tuning sessions over a single optimizer instance.  This module is that
serving layer for the reproduction: an asyncio :class:`AdvisorService`
accepting concurrent ``tune`` / ``sweep`` / ``estimate_size`` /
``whatif_cost`` requests against registered schema+workload contexts,
backed by the existing batched APIs, the persistent
:class:`EstimationCache`/:class:`CostCache`, and **one** shared
keep-alive :class:`ParallelEngine` pool.

Three properties the stress tests pin down:

* **Determinism.**  Requests execute one at a time on a dedicated
  executor thread, and every tuning run is isolated exactly like a
  sweep unit (fresh seeded estimator, cache fork views), so responses
  are byte-identical to sequential :meth:`TuningAdvisor.run` calls at
  any concurrency level — the answer a client gets can never depend on
  what other clients are doing.

* **In-flight coalescing.**  Identical concurrent requests (same kind,
  context and canonical payload) attach to a single future: the work
  runs once and every waiter gets the same response object.  Dedup
  counters are exposed per request kind (``stats()["coalesced"]``).

* **Backpressure.**  Requests flow through a bounded queue.
  ``request(..., wait=True)`` suspends the caller until a slot frees
  (asyncio-native backpressure); ``wait=False`` — what the HTTP layer
  uses — raises :class:`BackpressureError` immediately so clients get
  an honest 503 instead of an unbounded in-memory backlog.
"""

from __future__ import annotations

import asyncio
import copy
import json
from concurrent.futures import ThreadPoolExecutor

from repro.catalog.schema import Database
from repro.errors import BackpressureError, ServiceError
from repro.parallel.cache import CostCache, EstimationCache
from repro.parallel.engine import ParallelEngine
from repro.service.context import ServiceContext
from repro.stats.column_stats import DatabaseStats
from repro.workload.query import Workload

REQUEST_KINDS = ("tune", "sweep", "estimate_size", "whatif_cost")


def canonical_payload(payload: dict) -> str:
    """The canonical JSON form coalescing keys are built from: two
    payloads with the same content coalesce regardless of key order."""
    try:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ServiceError(
            f"request payload is not JSON-serializable: {exc}"
        ) from exc


class AdvisorService:
    """Long-lived async tuning service over registered contexts.

    Args:
        workers: pool size of the shared :class:`ParallelEngine` every
            advisor run borrows (0 = one per CPU, 1 = sequential).
        cache_dir: directory for the persistent size-estimate and
            what-if cost caches, shared by every context and request.
        max_pending: bound of the request queue (backpressure beyond).
        engine: injected engine (tests); overrides ``workers``.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        cache_dir: str | None = None,
        max_pending: int = 64,
        engine: ParallelEngine | None = None,
    ) -> None:
        if max_pending < 1:
            raise ServiceError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        self.engine = engine or ParallelEngine(workers)
        self.cache_dir = cache_dir
        self.estimation_cache = (
            EstimationCache(cache_dir) if cache_dir is not None else None
        )
        self.cost_cache = (
            CostCache(cache_dir) if cache_dir is not None else None
        )
        self.max_pending = max_pending
        self.contexts: dict[str, ServiceContext] = {}

        self._queue: asyncio.Queue | None = None
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._worker: asyncio.Task | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._closing = False

        #: per-kind instrumentation.
        self.requests = {kind: 0 for kind in REQUEST_KINDS}
        self.coalesced = {kind: 0 for kind in REQUEST_KINDS}
        self.completed = {kind: 0 for kind in REQUEST_KINDS}
        self.failed = {kind: 0 for kind in REQUEST_KINDS}
        self.rejected = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        database: Database,
        workload: Workload,
        *,
        stats: DatabaseStats | None = None,
        e: float = 0.5,
        q: float = 0.9,
    ) -> ServiceContext:
        """Register a (database, workload) context clients can address.
        Registration is cheap; statistics and samples build lazily on
        the first request that needs them."""
        if name in self.contexts:
            raise ServiceError(f"context {name!r} already registered")
        context = ServiceContext(
            name, database, workload,
            stats=stats,
            estimation_cache=self.estimation_cache,
            cost_cache=self.cost_cache,
            cache_dir=self.cache_dir,
            e=e, q=q,
        )
        self.contexts[name] = context
        return context

    @property
    def started(self) -> bool:
        return self._worker is not None and not self._worker.done()

    async def start(self) -> None:
        """Start the dispatch loop (idempotent)."""
        if self.started:
            return
        self._closing = False
        self._queue = asyncio.Queue(maxsize=self.max_pending)
        # One executor thread: requests run strictly one at a time, so
        # the shared engine (single-threaded by design) is never entered
        # concurrently and every run sees a quiescent optimizer.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="advisor-service"
        )
        self._worker = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    async def stop(self, drain: bool = True) -> None:
        """Stop the service: optionally drain queued work, then release
        the executor thread, the shared engine pool, and persist the
        caches.  Queued-but-unexecuted requests fail with
        :class:`ServiceError` when ``drain=False``."""
        if self._worker is None:
            return
        self._closing = True
        if drain and self._queue is not None:
            await self._queue.join()
        worker, self._worker = self._worker, None
        worker.cancel()
        try:
            await worker
        except asyncio.CancelledError:
            pass
        # Fail whatever never ran (stop(drain=False) under load).
        for fut in self._inflight.values():
            if not fut.done():
                fut.set_exception(ServiceError("service stopped"))
        self._inflight.clear()
        if self._queue is not None:
            # Free the queue's slots so callers parked in put() wake up
            # (they then observe their already-failed future) instead
            # of waiting on a queue nobody will ever drain again.
            while True:
                try:
                    self._queue.get_nowait()
                    self._queue.task_done()
                except asyncio.QueueEmpty:
                    break
        self._queue = None
        if self._executor is not None:
            # Waits for an in-flight job's thread to finish: no job is
            # abandoned halfway through mutating shared cache state.
            self._executor.shutdown(wait=True)
            self._executor = None
        # Release the shared pool even for injected engines: shutdown
        # only drops the *dormant* worker pool (a later session forks a
        # fresh one), so no caller state is invalidated, and a stopped
        # service never leaks forked processes.
        self.engine.shutdown()
        self.save_caches()

    def save_caches(self) -> None:
        if self.estimation_cache is not None:
            self.estimation_cache.save()
        if self.cost_cache is not None:
            self.cost_cache.save()

    async def __aenter__(self) -> "AdvisorService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    async def request(
        self, kind: str, context: str, payload: dict | None = None,
        *, wait: bool = True,
    ) -> dict:
        """Issue one request and await its response payload.

        Identical in-flight requests coalesce onto a single future.
        ``wait`` controls backpressure style: suspend until the bounded
        queue has room (True), or raise :class:`BackpressureError`
        immediately (False).
        """
        if kind not in REQUEST_KINDS:
            raise ServiceError(
                f"unknown request kind {kind!r}; one of {REQUEST_KINDS}"
            )
        if context not in self.contexts:
            raise ServiceError(
                f"unknown context {context!r}; registered: "
                f"{sorted(self.contexts)}"
            )
        if not self.started or self._closing:
            raise ServiceError("service is not running")
        payload = dict(payload or {})
        key = (kind, context, canonical_payload(payload))
        self.requests[kind] += 1
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced[kind] += 1
            # shield: one waiter's cancellation must not fail the rest;
            # deep copy: one waiter mutating its answer must not
            # corrupt the others' (or the cached sequential baseline).
            return copy.deepcopy(await asyncio.shield(existing))
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        item = (key, kind, context, payload)
        try:
            if wait:
                # Await point: identical requests may coalesce onto
                # `future` while we are parked here, so any bail-out
                # below must resolve it — waiters hold a shield on it
                # and would otherwise hang forever.
                await self._queue.put(item)
            else:
                self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self._inflight.pop(key, None)
            future.cancel()
            self.rejected += 1
            raise BackpressureError(
                f"request queue full ({self.max_pending} pending); "
                "retry later"
            ) from None
        except BaseException:
            self._inflight.pop(key, None)
            if not future.done():
                future.set_exception(
                    ServiceError("request cancelled before execution")
                )
            raise
        return copy.deepcopy(await asyncio.shield(future))

    async def tune(self, context: str, **payload) -> dict:
        return await self.request("tune", context, payload)

    async def sweep(self, context: str, **payload) -> dict:
        return await self.request("sweep", context, payload)

    async def estimate_size(self, context: str, **payload) -> dict:
        return await self.request("estimate_size", context, payload)

    async def whatif_cost(self, context: str, **payload) -> dict:
        return await self.request("whatif_cost", context, payload)

    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        """Pop requests off the bounded queue and run them, one at a
        time, on the executor thread; resolve the coalesced future."""
        loop = asyncio.get_running_loop()
        while True:
            key, kind, context, payload = await self._queue.get()
            future = self._inflight.get(key)
            try:
                result = await loop.run_in_executor(
                    self._executor, self._execute, kind, context, payload
                )
            except asyncio.CancelledError:
                # Service stopped mid-job (stop(drain=False) under
                # load): the executor thread finishes the job on its
                # own, but the caller must not hang on a future nobody
                # will ever resolve.
                if future is not None and not future.done():
                    future.set_exception(ServiceError("service stopped"))
                self._inflight.pop(key, None)
                self._queue.task_done()
                raise
            except Exception as exc:  # noqa: BLE001 - forwarded to caller
                self.failed[kind] += 1
                if future is not None and not future.done():
                    future.set_exception(exc)
            else:
                self.completed[kind] += 1
                if future is not None and not future.done():
                    future.set_result(result)
            self._inflight.pop(key, None)
            self._queue.task_done()

    def _execute(self, kind: str, context_name: str, payload: dict) -> dict:
        """Synchronous request execution (runs on the executor thread)."""
        context = self.contexts[context_name]
        if kind == "tune":
            return context.run_tune(payload, self.engine)
        if kind == "sweep":
            return context.run_sweep(payload, self.engine)
        if kind == "estimate_size":
            return context.run_estimate_size(payload)
        if kind == "whatif_cost":
            return context.run_whatif_cost(payload)
        raise ServiceError(f"unknown request kind {kind!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Service counters: queue state, per-kind request/coalescing/
        completion counts, engine and cache stats."""
        return {
            "contexts": sorted(self.contexts),
            "running": self.started,
            "max_pending": self.max_pending,
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "in_flight": len(self._inflight),
            "requests": dict(self.requests),
            "coalesced": dict(self.coalesced),
            "completed": dict(self.completed),
            "failed": dict(self.failed),
            "rejected": self.rejected,
            "engine": self.engine.stats(),
            "estimation_cache": (
                self.estimation_cache.stats()
                if self.estimation_cache is not None else {}
            ),
            "cost_cache": (
                self.cost_cache.stats()
                if self.cost_cache is not None else {}
            ),
        }
