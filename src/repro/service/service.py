"""The async tuning service: concurrent requests over one optimizer.

Commercial what-if tuners run as long-lived services multiplexing many
tuning sessions over a single optimizer instance.  This module is that
serving layer for the reproduction: an asyncio :class:`AdvisorService`
accepting concurrent ``tune`` / ``sweep`` / ``estimate_size`` /
``whatif_cost`` requests against registered schema+workload contexts,
backed by the existing batched APIs, the persistent
:class:`EstimationCache`/:class:`CostCache`, and **one** shared
keep-alive :class:`ParallelEngine` pool.

Three properties the stress tests pin down:

* **Determinism.**  Requests execute strictly one at a time *per
  context* (each context's scheduler lane is a single worker thread),
  and every tuning run is isolated exactly like a sweep unit (fresh
  seeded estimator, cache fork views), so responses are byte-identical
  to sequential :meth:`TuningAdvisor.run` calls at any concurrency
  level — the answer a client gets can never depend on what other
  clients are doing, while runs on different contexts overlap.

* **In-flight coalescing.**  Identical concurrent requests (same kind,
  context and canonical payload) attach to a single future: the work
  runs once and every waiter gets the same response object.  Dedup
  counters are exposed per request kind (``stats()["coalesced"]``).

* **Backpressure.**  Requests flow through a bounded queue.
  ``request(..., wait=True)`` suspends the caller until a slot frees
  (asyncio-native backpressure); ``wait=False`` — what the HTTP layer
  uses — raises :class:`BackpressureError` immediately so clients get
  an honest 503 instead of an unbounded in-memory backlog.

Since PR 5 the execution side is a **per-context scheduler**
(:mod:`repro.service.scheduler`): one serial worker lane per
registered context (capped by ``max_context_workers``), so the
determinism contract holds per context while runs on *different*
contexts overlap on multi-core hosts; each lane keeps one engine pool
warm across same-context requests (``pools_reused`` in
:meth:`stats`).  Long-running work is best submitted as a **job**
(:mod:`repro.service.jobs`): durable records with streamed per-greedy-
step progress and cancellation, served over ``/v1/jobs``.
"""

from __future__ import annotations

import asyncio
import copy
import json
import logging
import os

from repro.catalog.schema import Database
from repro.errors import BackpressureError, ServiceError
from repro.parallel.cache import CostCache, EstimationCache
from repro.parallel.engine import ParallelEngine
from repro.service.context import ServiceContext
from repro.service.faults import (
    FaultPlan,
    describe_active,
    fire,
    install,
    install_from_env,
)
from repro.service.jobs import JobManager, JobRecord
from repro.service.journal import JobJournal
from repro.service.scheduler import ContextLane, ContextScheduler
from repro.service.wire import validate_job_payload, validate_request
from repro.stats.column_stats import DatabaseStats
from repro.workload.query import Workload

logger = logging.getLogger(__name__)

REQUEST_KINDS = ("tune", "sweep", "estimate_size", "whatif_cost")


def canonical_payload(payload: dict) -> str:
    """The canonical JSON form coalescing keys are built from: two
    payloads with the same content coalesce regardless of key order."""
    try:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ServiceError(
            f"request payload is not JSON-serializable: {exc}"
        ) from exc


class AdvisorService:
    """Long-lived async tuning service over registered contexts.

    Args:
        workers: pool size of the shared :class:`ParallelEngine` every
            advisor run borrows (0 = one per CPU, 1 = sequential).
        cache_dir: directory for the persistent size-estimate and
            what-if cost caches, shared by every context and request.
        max_pending: bound of the request queue (backpressure beyond).
        max_context_workers: scheduler lane cap — at most this many
            contexts execute concurrently; beyond it contexts share
            lanes (per-context runs always serialize on their lane).
        engine: injected engine (tests); used by the first lane, and
            released on :meth:`stop` like every lane engine.
        tenant_quota: per-tenant cap on active (non-terminal) jobs —
            submissions beyond it raise
            :class:`~repro.errors.QuotaExceededError` (HTTP 429).
        tenant_weights: tenant -> round-robin weight inside each
            priority lane (default weight 1).
        execute_jobs: False = dispatch-only coordinator — jobs journal
            and queue but only ``repro serve --worker`` processes
            execute them.
        journal_writer: this process's journal segment name.
        poll_interval: seconds between journal tails for worker
            progress (only with a ``cache_dir``); the same tick runs
            the worker watchdog sweep and the degraded-mode journal
            probe.
        journal_max_segment_bytes: rotate this writer's journal
            segment past this size (None = never) — long-lived
            coordinators cap their live segment, compaction still
            merges the rotated ones.
        fault_plan: a :mod:`repro.service.faults` plan string to
            install at construction (chaos tests / ``repro serve
            --fault-plan``); the ``REPRO_FAULTS`` environment variable
            is honored either way.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        cache_dir: str | None = None,
        max_pending: int = 64,
        max_context_workers: int = 4,
        engine: ParallelEngine | None = None,
        tenant_quota: int | None = None,
        tenant_weights: dict | None = None,
        execute_jobs: bool = True,
        journal_writer: str = "coordinator",
        poll_interval: float = 0.25,
        journal_max_segment_bytes: int | None = None,
        fault_plan: str | None = None,
    ) -> None:
        if max_pending < 1:
            raise ServiceError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if max_context_workers < 1:
            raise ServiceError(
                f"max_context_workers must be >= 1, "
                f"got {max_context_workers}"
            )
        self.workers = workers
        self.engine = engine or ParallelEngine(workers)
        self.cache_dir = cache_dir
        self.estimation_cache = (
            EstimationCache(cache_dir) if cache_dir is not None else None
        )
        self.cost_cache = (
            CostCache(cache_dir) if cache_dir is not None else None
        )
        self.max_pending = max_pending
        self.max_context_workers = max_context_workers
        self.contexts: dict[str, ServiceContext] = {}
        self.scheduler = ContextScheduler(
            workers=workers, max_lanes=max_context_workers,
            primary_engine=self.engine,
        )
        #: the durable job journal (None without a cache_dir: the job
        #: tier degrades to the in-memory pre-durability behavior).
        # Fault injection activates before the first journal append so
        # a planned boot-time fault is not missed.
        install_from_env()
        if fault_plan:
            install(FaultPlan.parse(fault_plan))
        self.journal = (
            JobJournal(os.path.join(cache_dir, "jobs-journal"),
                       journal_writer,
                       max_segment_bytes=journal_max_segment_bytes)
            if cache_dir is not None else None
        )
        self.poll_interval = poll_interval
        self._poll_task: asyncio.Task | None = None
        self.jobs = JobManager(
            self, journal=self.journal, tenant_quota=tenant_quota,
            tenant_weights=tenant_weights, execute_jobs=execute_jobs,
        )

        self._inflight: dict[tuple, asyncio.Future] = {}
        self._active: set[asyncio.Task] = set()
        self._running = False
        self._closing = False
        self._scheduler_spent = False
        #: admission gate: requests admitted but not yet executing on a
        #: lane.  A slot frees when a lane thread picks the request up
        #: — the same instant the old dispatch loop popped the bounded
        #: queue — so ``max_pending`` bounds exactly what it used to.
        self._waiting = 0
        self._gate_waiters: list[asyncio.Future] = []

        #: per-kind instrumentation.
        self.requests = {kind: 0 for kind in REQUEST_KINDS}
        self.coalesced = {kind: 0 for kind in REQUEST_KINDS}
        self.completed = {kind: 0 for kind in REQUEST_KINDS}
        self.failed = {kind: 0 for kind in REQUEST_KINDS}
        self.rejected = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        database: Database,
        workload: Workload,
        *,
        stats: DatabaseStats | None = None,
        e: float = 0.5,
        q: float = 0.9,
    ) -> ServiceContext:
        """Register a (database, workload) context clients can address.
        Registration is cheap; statistics and samples build lazily on
        the first request that needs them."""
        if name in self.contexts:
            raise ServiceError(f"context {name!r} already registered")
        context = ServiceContext(
            name, database, workload,
            stats=stats,
            estimation_cache=self.estimation_cache,
            cost_cache=self.cost_cache,
            cache_dir=self.cache_dir,
            e=e, q=q,
        )
        self.contexts[name] = context
        return context

    @property
    def started(self) -> bool:
        return self._running

    async def start(self) -> None:
        """Start serving (idempotent)."""
        if self.started:
            return
        self._closing = False
        self._waiting = 0
        self._gate_waiters = []
        if self._scheduler_spent:
            # A stopped scheduler's lane executors are terminally shut
            # down; a restarted service schedules on fresh lanes (the
            # primary engine object is reusable — sessions re-fork).
            self.scheduler = ContextScheduler(
                workers=self.workers,
                max_lanes=self.max_context_workers,
                primary_engine=self.engine,
            )
            self._scheduler_spent = False
        self._running = True
        # Durable job tier: restore journaled jobs (re-enqueue queued,
        # mark interrupted runs recovered) and start tailing worker
        # segments so externally-executed jobs stay observable.
        self.jobs.recover()
        if self.journal is not None and self._poll_task is None:
            self._poll_task = asyncio.get_running_loop().create_task(
                self._poll_journal()
            )

    async def _poll_journal(self) -> None:
        """Fold worker-appended journal records into the in-memory job
        records on a fixed cadence (the coordinator's view of worker
        progress), then run the guardrail housekeeping that needs a
        steady heartbeat: the worker watchdog sweep (dead leases,
        orphaned jobs, queued-past-deadline) and the degraded-mode
        journal probe.  Transient failures (e.g. an OSError from a
        shared filesystem) must not kill the task — it is the only
        thing keeping externally-executed jobs observable — so each
        tick is guarded and the next one retries."""
        while True:
            await asyncio.sleep(self.poll_interval)
            try:
                records = self.journal.refresh()
                if records:
                    self.jobs.apply_external(records)
                self.jobs.resolve_stale_cancels()
                self.jobs.watchdog_sweep()
                self.jobs.journal_probe()
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - keep polling
                logger.warning("journal poll failed (will retry): %s",
                               exc)

    async def stop(self, drain: bool = True) -> None:
        """Stop the service: optionally drain admitted requests and
        jobs, then release every scheduler lane (executor threads and
        engine pools) and persist the caches.  With ``drain=False``,
        admitted-but-unexecuted requests fail with
        :class:`ServiceError` and running jobs are flagged for
        cancellation — they unwind at their next progress event."""
        if not self._running:
            return
        self._closing = True
        if self._poll_task is not None:
            self._poll_task.cancel()
            try:
                await self._poll_task
            except asyncio.CancelledError:
                pass
            self._poll_task = None
        if drain:
            while self._active:
                await asyncio.gather(*list(self._active),
                                     return_exceptions=True)
            await self.jobs.drain()
        else:
            self.jobs.cancel_all()
        self._running = False
        # Stop in-flight request tasks (their executor threads finish
        # on their own; the caller must not hang on a future nobody
        # will resolve).
        for task in list(self._active):
            task.cancel()
        if self._active:
            await asyncio.gather(*list(self._active),
                                 return_exceptions=True)
        # Fail whatever never ran (stop(drain=False) under load).
        for fut in self._inflight.values():
            if not fut.done():
                fut.set_exception(ServiceError("service stopped"))
        self._inflight.clear()
        # Wake callers parked at the admission gate; they observe their
        # already-failed future instead of waiting on a gate nobody
        # will ever open again.
        self._wake_gate()
        # Cancelled jobs settle fast (their runs unwind at the next
        # progress event); wait so no lane thread outlives the service.
        await self.jobs.drain()
        # Waits for in-flight lane threads, then drops every lane's
        # engine pool — a stopped service never leaks forked processes
        # or abandons a run halfway through shared cache state.
        self.scheduler.shutdown(wait=True)
        self._scheduler_spent = True
        # The primary engine may predate any lane (injected engines).
        self.engine.shutdown()
        if self.journal is not None:
            self.journal.close()
        self.save_caches()

    def save_caches(self) -> None:
        if self.estimation_cache is not None:
            self.estimation_cache.save()
        if self.cost_cache is not None:
            self.cost_cache.save()

    async def __aenter__(self) -> "AdvisorService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # admission gate (the bounded "queue": requests admitted but not
    # yet executing on a lane)
    # ------------------------------------------------------------------
    def _admit_nowait(self) -> None:
        if self._waiting >= self.max_pending:
            raise BackpressureError(
                f"request queue full ({self.max_pending} pending); "
                "retry later"
            )
        self._waiting += 1

    async def _admit(self) -> bool:
        """Park until a slot frees (FIFO); False when woken by a
        closing service — the caller's future is already failed."""
        while self._waiting >= self.max_pending and not self._closing:
            gate = asyncio.get_running_loop().create_future()
            self._gate_waiters.append(gate)
            try:
                await gate
            finally:
                if gate in self._gate_waiters:
                    self._gate_waiters.remove(gate)
        if self._closing:
            return False
        self._waiting += 1
        return True

    def _release_slot(self) -> None:
        """Free one admission slot and wake the next parked caller."""
        self._waiting -= 1
        for gate in self._gate_waiters:
            if not gate.done():
                gate.set_result(None)
                break

    def _wake_gate(self) -> None:
        for gate in self._gate_waiters:
            if not gate.done():
                gate.set_result(None)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    async def request(
        self, kind: str, context: str, payload: dict | None = None,
        *, wait: bool = True,
    ) -> dict:
        """Issue one request and await its response payload.

        Identical in-flight requests coalesce onto a single future.
        ``wait`` controls backpressure style: suspend until the bounded
        admission gate has room (True), or raise
        :class:`BackpressureError` immediately (False).
        """
        if kind not in REQUEST_KINDS:
            raise ServiceError(
                f"unknown request kind {kind!r}; one of {REQUEST_KINDS}"
            )
        if context not in self.contexts:
            raise ServiceError(
                f"unknown context {context!r}; registered: "
                f"{sorted(self.contexts)}"
            )
        if not self.started or self._closing:
            raise ServiceError("service is not running")
        payload = dict(payload or {})
        # The same closed envelope the HTTP layer enforces: in-process
        # callers must not smuggle routing (or any unknown) fields into
        # a coalescing key.
        validate_request(kind, payload)
        key = (kind, context, canonical_payload(payload))
        self.requests[kind] += 1
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced[kind] += 1
            # shield: one waiter's cancellation must not fail the rest;
            # deep copy: one waiter mutating its answer must not
            # corrupt the others' (or the cached sequential baseline).
            return copy.deepcopy(await asyncio.shield(existing))
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            if wait:
                # Await point: identical requests may coalesce onto
                # `future` while we are parked here, so any bail-out
                # below must resolve it — waiters hold a shield on it
                # and would otherwise hang forever.
                admitted = await self._admit()
            else:
                self._admit_nowait()
                admitted = True
        except BackpressureError:
            self._inflight.pop(key, None)
            future.cancel()
            self.rejected += 1
            raise
        except BaseException:
            self._inflight.pop(key, None)
            if not future.done():
                future.set_exception(
                    ServiceError("request cancelled before execution")
                )
            raise
        if admitted:
            task = asyncio.get_running_loop().create_task(
                self._run_item(key, kind, context, payload)
            )
            self._active.add(task)
            task.add_done_callback(self._active.discard)
        return copy.deepcopy(await asyncio.shield(future))

    async def tune(self, context: str, **payload) -> dict:
        return await self.request("tune", context, payload)

    async def sweep(self, context: str, **payload) -> dict:
        return await self.request("sweep", context, payload)

    async def estimate_size(self, context: str, **payload) -> dict:
        return await self.request("estimate_size", context, payload)

    async def whatif_cost(self, context: str, **payload) -> dict:
        return await self.request("whatif_cost", context, payload)

    # ------------------------------------------------------------------
    async def _run_item(
        self, key: tuple, kind: str, context: str, payload: dict,
    ) -> None:
        """Execute one admitted request on its context's lane; resolve
        the coalesced future.

        Requests on the same lane serialize through the lane's request
        lock (FIFO), so the determinism contract holds exactly as under
        the old single executor — while requests on different contexts'
        lanes overlap.  The admission slot frees the moment a lane
        picks the request up, mirroring the old dispatch-loop pop."""
        future = self._inflight.get(key)
        lane = self.scheduler.lane_for(context)
        slot_held = True

        def release_slot() -> None:
            nonlocal slot_held
            if slot_held:
                slot_held = False
                self._release_slot()

        try:
            async with lane.request_lock:
                release_slot()
                result = await asyncio.get_running_loop().run_in_executor(
                    lane.executor, self._execute, kind, context, payload,
                    lane,
                )
        except asyncio.CancelledError:
            # Service stopped mid-request (stop(drain=False) under
            # load): the lane thread finishes the work on its own, but
            # the caller must not hang on a future nobody will ever
            # resolve.
            release_slot()
            if future is not None and not future.done():
                future.set_exception(ServiceError("service stopped"))
            self._inflight.pop(key, None)
            raise
        except Exception as exc:  # noqa: BLE001 - forwarded to caller
            release_slot()
            self.failed[kind] += 1
            if future is not None and not future.done():
                future.set_exception(exc)
        else:
            self.completed[kind] += 1
            if future is not None and not future.done():
                future.set_result(result)
        self._inflight.pop(key, None)

    def _execute(
        self, kind: str, context_name: str, payload: dict,
        lane: ContextLane | None = None, progress=None,
    ) -> dict:
        """Synchronous request execution (runs on a lane thread).

        ``lane`` wires the run to the lane's engine and, for tune
        requests, the context's warm fork slot; ``progress`` threads
        the job layer's event hook into the advisor."""
        fire("service.execute", kind=kind, context=context_name)
        context = self.contexts[context_name]
        if lane is not None:
            lane.executed += 1
        engine = lane.engine if lane is not None else self.engine
        if kind == "tune":
            slot = context.warm_slot
            stale_ok = False
            if lane is not None:
                stale_ok = self.scheduler.prepare_warm(
                    lane, slot, context.tune_signature(payload)
                )
            try:
                return context.run_tune(
                    payload, engine, fork_slot=slot,
                    stale_ok=stale_ok, progress=progress,
                )
            except BaseException:
                if lane is not None:
                    # A failed or cancelled run leaves a partial pool —
                    # it must never look warm to a successor.
                    self.scheduler.release(lane, slot)
                raise
        if kind == "sweep":
            try:
                return context.run_sweep(payload, engine,
                                         progress=progress)
            finally:
                if lane is not None:
                    # A sweep's pool forks against its own (now dead)
                    # job object — never reusable; don't leave idle
                    # workers parked on the lane.
                    lane.engine.shutdown()
        if kind == "retune":
            try:
                return context.run_retune(payload, engine,
                                          progress=progress)
            finally:
                if lane is not None:
                    # Like a sweep, a retune forks against a transient
                    # job object — the lane pool is not reusable after.
                    lane.engine.shutdown()
        if kind == "estimate_size":
            return context.run_estimate_size(payload)
        if kind == "whatif_cost":
            return context.run_whatif_cost(payload)
        raise ServiceError(f"unknown request kind {kind!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # jobs (see repro.service.jobs — thin delegation so the HTTP layer
    # and in-process callers share one entry point)
    # ------------------------------------------------------------------
    def submit_job(self, kind: str, context: str,
                   payload: dict | None = None, *,
                   tenant: str = "default",
                   priority: str = "normal",
                   deadline_s: float | None = None,
                   retries: int = 0,
                   retry_backoff: float | None = None) -> JobRecord:
        """Submit a ``tune``/``sweep``/``retune`` job; returns its
        record (poll
        via :meth:`job`, stream via :meth:`job_events`).  ``tenant``
        tags the submission for fairness/quota accounting; ``priority``
        picks its lane (``high``/``normal``/``low``); ``deadline_s``
        bounds its wall time from submission; ``retries``/
        ``retry_backoff`` give transient failures a budget."""
        # Same closed schema as POST /v1/jobs, minus the envelope: a
        # payload smuggling routing fields would skew journaled re-runs
        # and warm-affinity signatures, so it fails at submission.
        validate_job_payload(kind, dict(payload or {}))
        return self.jobs.submit(kind, context, dict(payload or {}),
                                tenant=tenant, priority=priority,
                                deadline_s=deadline_s, retries=retries,
                                retry_backoff=retry_backoff)

    @property
    def degraded(self) -> bool:
        """True while any disk-pressure degradation is active: the job
        journal is buffering in memory, or a persistent cache's last
        save failed with ``ENOSPC``/``EIO``."""
        if self.jobs.degraded:
            return True
        for cache in (self.estimation_cache, self.cost_cache):
            if cache is not None and getattr(cache, "degraded", False):
                return True
        return False

    def job(self, job_id: str) -> JobRecord:
        return self.jobs.get(job_id)

    def cancel_job(self, job_id: str) -> JobRecord:
        return self.jobs.cancel(job_id)

    def job_events(self, job_id: str, after: int = 0):
        """Async iterator over a job's progress events (live tail)."""
        return self.jobs.stream(job_id, after)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Service counters: queue state, per-kind request/coalescing/
        completion counts, scheduler lanes (warm-pool reuse), jobs,
        engine and cache stats."""
        scheduler = self.scheduler.stats()
        return {
            "contexts": sorted(self.contexts),
            "running": self.started,
            "max_pending": self.max_pending,
            "queue_depth": self._waiting,
            "in_flight": len(self._inflight),
            "requests": dict(self.requests),
            "coalesced": dict(self.coalesced),
            "completed": dict(self.completed),
            "failed": dict(self.failed),
            "rejected": self.rejected,
            "engine": self.engine.stats(),
            "scheduler": scheduler,
            #: top-level convenience: total warm-pool reuses across
            #: lanes (the service-affinity acceptance metric).
            "pools_reused": scheduler["pools_reused"],
            "degraded": self.degraded,
            "faults": describe_active(),
            "jobs": self.jobs.stats(),
            "estimation_cache": (
                self.estimation_cache.stats()
                if self.estimation_cache is not None else {}
            ),
            "cost_cache": (
                self.cost_cache.stats()
                if self.cost_cache is not None else {}
            ),
        }
