"""Deterministic fault injection for the job tier's chaos tests.

Production failures — disk pressure, transient I/O errors, hung
estimator batches, silently-dead workers — are timing-dependent and
unreproducible by nature.  This module makes them *scheduled*: a
:class:`FaultPlan` is an enumerable list of :class:`FaultSpec` entries,
each naming a registered injection **site** (see :data:`SITES`), what
to inject (``enospc``/``eio`` → :class:`OSError`, ``error``/``stall``
→ :class:`InjectedFault`, ``delay=S`` → a sleep) and *when* (skip the
first ``@N`` matching calls, fire at most ``xM`` times).  The same
plan replays the exact same failure schedule on every run, so a chaos
test's assertions — every job terminal, no leaked leases, byte-
identical retry results — are deterministic.

Activation:

* tests: ``faults.install(FaultPlan.parse("journal.append:enospcx3"))``
  and ``faults.clear()`` in teardown;
* CLI: ``repro serve --fault-plan 'coster.batch:error@2x1'``;
* env: ``REPRO_FAULTS='journal.append:enospc@5'`` — read by
  :func:`install_from_env` at service construction, which is how CI's
  disk-full smoke injects ``ENOSPC`` into a real server process.

Plan grammar (specs joined by ``;``)::

    SITE:KIND[@AFTER][xTIMES][~MATCH]

    journal.append:enospc@5x3   calls 6..8 to journal.append fail ENOSPC
    coster.batch:error@2x1      the 3rd cost batch raises InjectedFault
    estimator.estimate:delay=0.05   every estimation batch sleeps 50ms
    worker.heartbeat:stall      heartbeats are skipped (lease goes stale)

Hot paths outside the service package (the coster, the size estimator,
the persistent caches) must not import this module at module scope —
that would drag the whole service package into every tune.  They
declare a module-level ``FAULT_HOOK = None`` instead;
:func:`install` rebinds it to :func:`fire` (and :func:`clear` back to
None), so an inactive plan costs those paths a single ``is None``
check.

:func:`FaultPlan.seeded` derives a small randomized schedule from an
integer seed (the CI chaos matrix replays seeds 0..2): same seed, same
schedule, always.
"""

from __future__ import annotations

import errno
import importlib
import os
import random
import threading
import time

from repro.errors import ReproError

#: every registered injection point: site name -> where it fires.
SITES = {
    "journal.append": "JobJournal._append, before the segment write",
    "journal.fsync": "JobJournal._append, before the per-line fsync",
    "journal.rotate": "JobJournal segment rotation, before the rename",
    "cache.save": "_PersistentJsonCache.save, before the atomic replace",
    "worker.heartbeat": "JobWorker progress hook, before a lease beat",
    "worker.claim": "JobWorker.run_once, after a successful claim",
    "coster.batch": "WhatIfOptimizer.workload_cost_batch entry",
    "estimator.estimate": "SizeEstimator.estimate_many entry",
    "scheduler.lane": "ContextScheduler.lane_for entry",
    "service.execute": "AdvisorService._execute entry",
}

#: fault kinds a spec may inject (``delay`` carries a seconds arg).
KINDS = ("enospc", "eio", "error", "stall", "delay")

#: modules outside repro.service that expose a FAULT_HOOK attribute
#: (lazy-bound so inactive plans never import the service package).
_HOOK_MODULES = (
    "repro.optimizer.whatif",
    "repro.sizeest.estimator",
    "repro.parallel.cache",
)

#: environment variable install_from_env() reads a plan string from.
ENV_VAR = "REPRO_FAULTS"


class InjectedFault(ReproError):
    """A scheduled failure from an active :class:`FaultPlan`.

    ``error`` specs raise it to model an operation blowing up (the
    retry path treats it like any transient exception); ``stall``
    specs raise it at sites that *catch* it to model an operation
    silently not happening (a skipped heartbeat, a hung claim)."""


class FaultPlanError(ReproError):
    """A fault-plan string that does not parse or names unknown sites."""


class FaultSpec:
    """One scheduled fault: where, what, and when.

    Args:
        site: a key of :data:`SITES`.
        kind: one of :data:`KINDS`.
        after: matching calls to skip before the first firing.
        times: maximum firings (None = every matching call).
        delay: sleep seconds (``delay`` kind only).
        match: only fire when this substring appears in the call's
            context values (e.g. a job id or context name).
    """

    def __init__(self, site: str, kind: str, *, after: int = 0,
                 times: int | None = None, delay: float = 0.0,
                 match: str | None = None) -> None:
        if site not in SITES:
            raise FaultPlanError(
                f"unknown fault site {site!r}; one of {sorted(SITES)}"
            )
        if kind not in KINDS:
            raise FaultPlanError(
                f"unknown fault kind {kind!r}; one of {KINDS}"
            )
        self.site = site
        self.kind = kind
        self.after = max(int(after), 0)
        self.times = times
        self.delay = float(delay)
        self.match = match
        #: matching calls observed / faults actually fired.
        self.calls = 0
        self.fired = 0

    def describe(self) -> dict:
        return {
            "site": self.site, "kind": self.kind, "after": self.after,
            "times": self.times, "delay": self.delay,
            "match": self.match, "calls": self.calls,
            "fired": self.fired,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSpec({self.describe()!r})"


class FaultPlan:
    """An enumerable, thread-safe schedule of :class:`FaultSpec`\\ s."""

    def __init__(self, specs: "list[FaultSpec] | None" = None) -> None:
        self.specs = list(specs or [])
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Build a plan from the compact CLI/env grammar (see module
        docstring); raises :class:`FaultPlanError` on anything it does
        not understand."""
        specs = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            site, sep, rest = chunk.partition(":")
            if not sep or not rest:
                raise FaultPlanError(
                    f"bad fault spec {chunk!r}; expected "
                    "SITE:KIND[@AFTER][xTIMES][~MATCH]"
                )
            match = None
            if "~" in rest:
                rest, _, match = rest.partition("~")
            kind = rest
            after, times, delay = 0, None, 0.0
            # x and @ suffixes may appear in either order after KIND.
            while True:
                for mark in ("@", "x"):
                    head, sep, tail = kind.rpartition(mark)
                    if not sep:
                        continue
                    # `delay=0.5x2`: rpartition on x must not eat into
                    # the kind token itself — the tail must be numeric.
                    try:
                        value = float(tail)
                    except ValueError:
                        continue
                    if mark == "@":
                        after = int(value)
                    else:
                        times = int(value)
                    kind = head
                    break
                else:
                    break
            if kind.startswith("delay"):
                _, _, arg = kind.partition("=")
                try:
                    delay = float(arg)
                except ValueError:
                    raise FaultPlanError(
                        f"bad delay spec {chunk!r}; expected "
                        "delay=SECONDS"
                    ) from None
                kind = "delay"
            specs.append(FaultSpec(
                site.strip(), kind.strip(), after=after, times=times,
                delay=delay, match=match,
            ))
        return cls(specs)

    @classmethod
    def seeded(cls, seed: int, *, sites: "list[str] | None" = None,
               faults: int = 3) -> "FaultPlan":
        """A small deterministic schedule derived from ``seed`` — the
        CI chaos matrix replays the same seeds on every run.  Only
        *recoverable* kinds are drawn (``error`` and ``enospc``, each
        bounded ``x1``..``x2``): the point is proving the guardrails
        converge, not that unbounded disk loss is survivable."""
        rng = random.Random(seed)
        pool = sorted(sites if sites is not None else SITES)
        specs = [
            FaultSpec(
                rng.choice(pool),
                rng.choice(("error", "enospc")),
                after=rng.randrange(0, 4),
                times=rng.randrange(1, 3),
            )
            for _ in range(faults)
        ]
        return cls(specs)

    # ------------------------------------------------------------------
    def fire(self, site: str, **ctx) -> None:
        """Apply every due spec for one call at ``site`` (called via
        the module-level :func:`fire`)."""
        due = []
        with self._lock:
            for spec in self.specs:
                if spec.site != site:
                    continue
                if spec.match is not None and spec.match not in " ".join(
                        str(value) for value in ctx.values()):
                    continue
                spec.calls += 1
                if spec.calls <= spec.after:
                    continue
                if spec.times is not None and spec.fired >= spec.times:
                    continue
                spec.fired += 1
                due.append(spec)
        for spec in due:
            if spec.kind == "delay":
                time.sleep(spec.delay)
            elif spec.kind == "enospc":
                raise OSError(
                    errno.ENOSPC,
                    f"no space left on device (injected at {site})",
                )
            elif spec.kind == "eio":
                raise OSError(
                    errno.EIO, f"input/output error (injected at {site})"
                )
            else:  # error / stall
                raise InjectedFault(
                    f"injected {spec.kind} at {site}"
                )

    def describe(self) -> list[dict]:
        with self._lock:
            return [spec.describe() for spec in self.specs]


#: the installed plan; None = fault injection fully inactive.
_ACTIVE: FaultPlan | None = None


def active() -> FaultPlan | None:
    return _ACTIVE


def fire(site: str, **ctx) -> None:
    """The injection point call: a no-op unless a plan is installed.
    Service-package modules call this directly; hot paths outside the
    package go through their rebound ``FAULT_HOOK`` instead."""
    plan = _ACTIVE
    if plan is not None:
        plan.fire(site, **ctx)


def _bind_hooks(target) -> None:
    for name in _HOOK_MODULES:
        module = importlib.import_module(name)
        module.FAULT_HOOK = target


def install(plan: FaultPlan) -> FaultPlan:
    """Activate a plan process-wide (rebinding the out-of-package
    ``FAULT_HOOK``\\ s); returns it for chaining."""
    global _ACTIVE
    _ACTIVE = plan
    _bind_hooks(fire)
    return plan


def clear() -> None:
    """Deactivate fault injection entirely."""
    global _ACTIVE
    _ACTIVE = None
    _bind_hooks(None)


def install_from_env(environ=None) -> FaultPlan | None:
    """Install the plan named by ``$REPRO_FAULTS`` when set (CLI/CI
    activation); leaves any already-installed plan alone otherwise."""
    text = (environ if environ is not None else os.environ).get(ENV_VAR)
    if not text:
        return None
    return install(FaultPlan.parse(text))


def describe_active() -> list[dict] | None:
    """The active plan's per-spec schedule and counters (surfaced in
    ``stats()`` so CI smokes can assert a fault actually fired)."""
    plan = _ACTIVE
    return plan.describe() if plan is not None else None
