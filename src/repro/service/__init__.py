"""Async tuning service: concurrent what-if tuning over one optimizer.

See :class:`AdvisorService` (asyncio core, coalescing + backpressure),
:class:`JobManager` (durable ``tune``/``sweep`` jobs with streamed
progress, cancellation, priority lanes and tenant quotas),
:class:`JobJournal` (the append-only journal that makes the job tier
survive restarts), :class:`JobWorker` (``repro serve --worker``
scale-out over journal leases), :class:`ContextScheduler` /
:class:`FairQueue` (per-context worker lanes with warm engine affinity
and tenant-fair turn-taking), :class:`ServiceHTTPServer` /
:func:`serve` (stdlib JSON-over-HTTP incl. ``/v1/jobs``), and
:class:`AdvisorClient` (async client with retry/backoff and event
streaming).  :mod:`repro.service.faults` adds a deterministic
fault-injection layer (:class:`FaultPlan`) behind the tier's runtime
guardrails: per-job deadlines, retry policies, disk-pressure degraded
mode and the coordinator's worker watchdog.
"""

from repro.service.client import AdvisorClient, ServiceHTTPError
from repro.service.context import (
    ServiceContext,
    index_to_spec,
    parse_index_spec,
    serialize_result,
)
from repro.service.faults import (
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedFault,
    clear as clear_faults,
    describe_active,
    install as install_faults,
    install_from_env,
)
from repro.service.http import ServiceHTTPServer, describe_algorithms, serve
from repro.service.jobs import (
    JOB_KINDS,
    JOB_STATES,
    TERMINAL_STATES,
    JobManager,
    JobRecord,
)
from repro.service.journal import JobImage, JobJournal, JournalError
from repro.service.scheduler import (
    PRIORITIES,
    ContextLane,
    ContextScheduler,
    FairQueue,
    WarmSlot,
)
from repro.service.service import REQUEST_KINDS, AdvisorService
from repro.service.worker import JobWorker

__all__ = [
    "AdvisorService",
    "AdvisorClient",
    "ContextLane",
    "ContextScheduler",
    "FairQueue",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "InjectedFault",
    "JobImage",
    "JobJournal",
    "JobManager",
    "JobRecord",
    "JobWorker",
    "JournalError",
    "JOB_KINDS",
    "JOB_STATES",
    "PRIORITIES",
    "REQUEST_KINDS",
    "ServiceContext",
    "ServiceHTTPServer",
    "ServiceHTTPError",
    "TERMINAL_STATES",
    "WarmSlot",
    "serve",
    "clear_faults",
    "describe_active",
    "install_faults",
    "install_from_env",
    "describe_algorithms",
    "serialize_result",
    "parse_index_spec",
    "index_to_spec",
]
