"""Async tuning service: concurrent what-if tuning over one optimizer.

See :class:`AdvisorService` (asyncio core, coalescing + backpressure),
:class:`JobManager` (durable ``tune``/``sweep`` jobs with streamed
progress and cancellation), :class:`ContextScheduler` (per-context
worker lanes with warm engine affinity), :class:`ServiceHTTPServer` /
:func:`serve` (stdlib JSON-over-HTTP incl. ``/v1/jobs``), and
:class:`AdvisorClient` (async client with retry/backoff and event
streaming).
"""

from repro.service.client import AdvisorClient, ServiceHTTPError
from repro.service.context import (
    ServiceContext,
    index_to_spec,
    parse_index_spec,
    serialize_result,
)
from repro.service.http import ServiceHTTPServer, describe_algorithms, serve
from repro.service.jobs import (
    JOB_KINDS,
    JOB_STATES,
    TERMINAL_STATES,
    JobManager,
    JobRecord,
)
from repro.service.scheduler import ContextLane, ContextScheduler, WarmSlot
from repro.service.service import REQUEST_KINDS, AdvisorService

__all__ = [
    "AdvisorService",
    "AdvisorClient",
    "ContextLane",
    "ContextScheduler",
    "JobManager",
    "JobRecord",
    "JOB_KINDS",
    "JOB_STATES",
    "REQUEST_KINDS",
    "ServiceContext",
    "ServiceHTTPServer",
    "ServiceHTTPError",
    "TERMINAL_STATES",
    "WarmSlot",
    "serve",
    "describe_algorithms",
    "serialize_result",
    "parse_index_spec",
    "index_to_spec",
]
