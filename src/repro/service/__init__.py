"""Async tuning service: concurrent what-if tuning over one optimizer.

See :class:`AdvisorService` (asyncio core, coalescing + backpressure),
:class:`ServiceHTTPServer` / :func:`serve` (stdlib JSON-over-HTTP), and
:class:`AdvisorClient` (async client).
"""

from repro.service.client import AdvisorClient, ServiceHTTPError
from repro.service.context import (
    ServiceContext,
    index_to_spec,
    parse_index_spec,
    serialize_result,
)
from repro.service.http import ServiceHTTPServer, serve
from repro.service.service import REQUEST_KINDS, AdvisorService

__all__ = [
    "AdvisorService",
    "AdvisorClient",
    "ServiceContext",
    "ServiceHTTPServer",
    "ServiceHTTPError",
    "REQUEST_KINDS",
    "serve",
    "serialize_result",
    "parse_index_spec",
    "index_to_spec",
]
