"""Async client for the advisor service's JSON-over-HTTP API.

Stdlib-only (``asyncio`` streams), one connection per request —
tuning requests are long and rare, so connection reuse buys nothing.

Usage::

    async with AdvisorClient("127.0.0.1", 8765) as client:
        health = await client.healthz()
        answer = await client.tune("sales", budget_fraction=0.15)
        print(answer["result"]["improvement"])

Raises :class:`ServiceHTTPError` on non-2xx responses (``status`` and
the server's error text attached), which callers can branch on — a 503
means the bounded request queue is full and the request is safe to
retry.
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import ServiceError


class ServiceHTTPError(ServiceError):
    """A non-2xx response from the advisor service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message

    @property
    def retryable(self) -> bool:
        """Whether the failure is transient backpressure (HTTP 503)."""
        return self.status == 503


class AdvisorClient:
    """Talks to one :class:`~repro.service.http.ServiceHTTPServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 timeout: float = 600.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    async def __aenter__(self) -> "AdvisorClient":
        return self

    async def __aexit__(self, *exc) -> None:
        return None

    # ------------------------------------------------------------------
    async def _request(self, method: str, path: str,
                       payload: dict | None = None) -> dict:
        body = json.dumps(payload).encode() if payload is not None else b""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode() + body)
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), self.timeout)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
        header_lines = header_blob.decode("latin-1").split("\r\n")
        try:
            status = int(header_lines[0].split()[1])
        except (IndexError, ValueError) as exc:
            raise ServiceError(
                f"malformed response from service: {header_lines[:1]!r}"
            ) from exc
        try:
            answer = json.loads(body_blob.decode() or "{}")
        except ValueError as exc:
            raise ServiceError(
                f"non-JSON response body (status {status}): {exc}"
            ) from exc
        if status >= 300:
            raise ServiceHTTPError(
                status, answer.get("error", "unknown error")
            )
        return answer

    async def _post(self, kind: str, context: str, **payload) -> dict:
        return await self._request(
            "POST", f"/v1/{kind}", {"context": context, **payload}
        )

    # ------------------------------------------------------------------
    async def healthz(self) -> dict:
        return await self._request("GET", "/healthz")

    async def stats(self) -> dict:
        return await self._request("GET", "/v1/stats")

    async def contexts(self) -> dict:
        return await self._request("GET", "/v1/contexts")

    async def tune(self, context: str, **payload) -> dict:
        return await self._post("tune", context, **payload)

    async def sweep(self, context: str, **payload) -> dict:
        return await self._post("sweep", context, **payload)

    async def estimate_size(self, context: str, **payload) -> dict:
        return await self._post("estimate_size", context, **payload)

    async def whatif_cost(self, context: str, **payload) -> dict:
        return await self._post("whatif_cost", context, **payload)

    async def wait_ready(self, attempts: int = 50,
                         delay: float = 0.2) -> dict:
        """Poll ``/healthz`` until the service answers (boot helper for
        scripts and CI smoke jobs)."""
        last: Exception | None = None
        for _ in range(attempts):
            try:
                return await self.healthz()
            except (ConnectionError, OSError, ServiceError) as exc:
                last = exc
                await asyncio.sleep(delay)
        raise ServiceError(
            f"service at {self.host}:{self.port} never became ready: {last}"
        )
