"""Async client for the advisor service's JSON-over-HTTP API.

Stdlib-only (``asyncio`` streams), one connection per request —
tuning requests are long and rare, so connection reuse buys nothing.

Usage::

    async with AdvisorClient("127.0.0.1", 8765) as client:
        health = await client.healthz()
        answer = await client.tune("sales", budget_fraction=0.15)
        print(answer["result"]["improvement"])

        # Job-based serving: submit, stream progress, await the result.
        job = await client.submit_job("sales", kind="tune",
                                      budget_fraction=0.15)
        async for event in client.stream_events(job["id"]):
            print(event)
        done = await client.job(job["id"])

Raises :class:`ServiceHTTPError` on non-2xx responses (``status`` and
the server's error text attached).  **Retryable** failures — HTTP 503
backpressure, HTTP 429 tenant-quota breaches, and connection-level
errors (``ECONNREFUSED``/connection reset during a coordinator
restart) — are retried automatically with exponential backoff that
honors the server's ``Retry-After`` header (``retries=0`` disables);
everything else surfaces immediately.
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import ServiceError
from repro.service.wire import SCHEMA_VERSION


class ServiceHTTPError(ServiceError):
    """A non-2xx response from the advisor service."""

    def __init__(self, status: int, message: str,
                 retry_after: float | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        #: seconds the server asked us to wait (``Retry-After``), when
        #: it sent one.
        self.retry_after = retry_after

    @property
    def retryable(self) -> bool:
        """Whether the failure is transient pressure: global
        backpressure (HTTP 503) or a per-tenant quota breach (HTTP
        429) — both clear as jobs finish."""
        return self.status in (429, 503)


class AdvisorClient:
    """Talks to one :class:`~repro.service.http.ServiceHTTPServer`.

    Args:
        host/port: where the service listens.
        timeout: per-request ceiling (streams apply it per event).
        retries: automatic retries of *retryable* failures (429/503); the
            schedule is ``backoff * 2**attempt`` seconds, raised to the
            server's ``Retry-After`` when larger, capped at
            ``max_backoff``.  0 restores raise-immediately behavior.
        sleep: the delay coroutine (injectable for fake-clock tests).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 timeout: float = 600.0, retries: int = 2,
                 backoff: float = 0.25, max_backoff: float = 8.0,
                 sleep=asyncio.sleep) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self._sleep = sleep

    async def __aenter__(self) -> "AdvisorClient":
        return self

    async def __aexit__(self, *exc) -> None:
        return None

    # ------------------------------------------------------------------
    def retry_delay(self, attempt: int,
                    retry_after: float | None = None) -> float:
        """The backoff before retry number ``attempt`` (0-based):
        exponential, floored at the server's ``Retry-After``, capped at
        ``max_backoff``."""
        delay = self.backoff * (2 ** attempt)
        if retry_after is not None:
            delay = max(delay, retry_after)
        return min(delay, self.max_backoff)

    async def _request(self, method: str, path: str,
                       payload: dict | None = None) -> dict:
        """One request with automatic backoff on retryable failures.

        Connection-level errors (``ECONNREFUSED``, connection reset —
        any :class:`OSError`) retry on the same schedule as HTTP
        429/503: they are what a coordinator restart looks like from
        the client side, and blowing up mid-restart would defeat the
        point of the backoff."""
        attempt = 0
        while True:
            try:
                return await self._request_once(method, path, payload)
            except (ServiceHTTPError, OSError) as exc:
                if isinstance(exc, TimeoutError):
                    # A request that ran out its own `timeout` budget
                    # is not a transient connect failure (TimeoutError
                    # subclasses OSError on 3.11+): surface it.
                    raise
                retryable = (
                    exc.retryable
                    if isinstance(exc, ServiceHTTPError)
                    else True
                )
                if not retryable or attempt >= self.retries:
                    raise
                retry_after = getattr(exc, "retry_after", None)
                await self._sleep(
                    self.retry_delay(attempt, retry_after)
                )
                attempt += 1

    async def _request_once(self, method: str, path: str,
                            payload: dict | None = None) -> dict:
        body = json.dumps(payload).encode() if payload is not None else b""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode() + body)
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), self.timeout)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
        status, headers = self._parse_head(header_blob)
        if headers.get("transfer-encoding") == "chunked":
            body_blob = _dechunk(body_blob)
        try:
            answer = json.loads(body_blob.decode() or "{}")
        except ValueError as exc:
            raise ServiceError(
                f"non-JSON response body (status {status}): {exc}"
            ) from exc
        if status >= 300:
            raise ServiceHTTPError(
                status, answer.get("error", "unknown error"),
                retry_after=_retry_after(headers),
            )
        if path.startswith("/v1/") and isinstance(answer, dict):
            # The server stamps every /v1 response; a mismatch means
            # we are talking to a server speaking a different envelope.
            version = answer.get("schema_version", SCHEMA_VERSION)
            if version != SCHEMA_VERSION:
                raise ServiceError(
                    f"server answered schema_version {version!r}; this "
                    f"client speaks {SCHEMA_VERSION}"
                )
        return answer

    @staticmethod
    def _parse_head(header_blob: bytes) -> tuple[int, dict]:
        header_lines = header_blob.decode("latin-1").split("\r\n")
        try:
            status = int(header_lines[0].split()[1])
        except (IndexError, ValueError) as exc:
            raise ServiceError(
                f"malformed response from service: {header_lines[:1]!r}"
            ) from exc
        headers: dict[str, str] = {}
        for line in header_lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    async def _post(self, kind: str, context: str, **payload) -> dict:
        return await self._request(
            "POST", f"/v1/{kind}",
            {"schema_version": SCHEMA_VERSION, "context": context,
             **payload},
        )

    # ------------------------------------------------------------------
    async def healthz(self) -> dict:
        return await self._request("GET", "/healthz")

    async def stats(self) -> dict:
        return await self._request("GET", "/v1/stats")

    async def contexts(self) -> dict:
        return await self._request("GET", "/v1/contexts")

    async def algorithms(self) -> dict:
        """Registered selection algorithms with their option schemas
        (``GET /v1/algorithms``)."""
        return await self._request("GET", "/v1/algorithms")

    async def tune(self, context: str, **payload) -> dict:
        return await self._post("tune", context, **payload)

    async def sweep(self, context: str, **payload) -> dict:
        return await self._post("sweep", context, **payload)

    async def estimate_size(self, context: str, **payload) -> dict:
        return await self._post("estimate_size", context, **payload)

    async def whatif_cost(self, context: str, **payload) -> dict:
        return await self._post("whatif_cost", context, **payload)

    # ------------------------------------------------------------------
    # jobs
    # ------------------------------------------------------------------
    async def submit_job(self, context: str, kind: str = "tune",
                         tenant: str = "default",
                         priority: str = "normal",
                         deadline_s: float | None = None,
                         retries: int | None = None,
                         retry_backoff: float | None = None,
                         **payload) -> dict:
        """Submit a tune/sweep job; returns its snapshot (``id``,
        ``state``, ...).  ``tenant`` tags the submission for the
        server's fairness/quota accounting, ``priority`` picks its lane
        (``high``/``normal``/``low``); ``deadline_s`` bounds the job's
        wall time from submission, ``retries``/``retry_backoff`` give
        transient failures a budget."""
        body = {
            "schema_version": SCHEMA_VERSION, "context": context,
            "kind": kind, "tenant": tenant, "priority": priority,
            **payload,
        }
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        if retries is not None:
            body["retries"] = retries
        if retry_backoff is not None:
            body["retry_backoff"] = retry_backoff
        return await self._request("POST", "/v1/jobs", body)

    async def job(self, job_id: str) -> dict:
        """Poll one job's snapshot (carries ``result`` once done)."""
        return await self._request("GET", f"/v1/jobs/{job_id}")

    async def jobs(self, tenant: str | None = None) -> dict:
        path = "/v1/jobs"
        if tenant is not None:
            path += f"?tenant={tenant}"
        return await self._request("GET", path)

    async def cancel_job(self, job_id: str) -> dict:
        return await self._request("POST", f"/v1/jobs/{job_id}/cancel")

    async def stream_events(self, job_id: str, after: int = 0):
        """Async-iterate a job's progress events live (the chunked
        ``/v1/jobs/<id>/events`` stream); ends when the job reaches a
        terminal state.  Not retried — resume with ``after=`` the last
        seen ``seq`` instead."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            path = f"/v1/jobs/{job_id}/events"
            if after:
                path += f"?after={after}"
            writer.write((
                f"GET {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Connection: close\r\n\r\n"
            ).encode())
            await writer.drain()
            header_blob = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), self.timeout
            )
            status, headers = self._parse_head(header_blob[:-4])
            if status >= 300:
                body = await asyncio.wait_for(reader.read(), self.timeout)
                if headers.get("transfer-encoding") == "chunked":
                    body = _dechunk(body)
                try:
                    answer = json.loads(body.decode() or "{}")
                except ValueError:
                    answer = {}
                raise ServiceHTTPError(
                    status, answer.get("error", "unknown error"),
                    retry_after=_retry_after(headers),
                )
            buffer = b""
            while True:
                size_line = await asyncio.wait_for(
                    reader.readline(), self.timeout
                )
                size = int(size_line.strip() or b"0", 16)
                if size == 0:
                    break
                chunk = await asyncio.wait_for(
                    reader.readexactly(size + 2), self.timeout
                )
                buffer += chunk[:-2]  # strip the chunk's CRLF
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def wait_job(self, job_id: str, poll: float = 0.2) -> dict:
        """Block until a job is terminal (streaming when possible,
        polling as fallback) and return its final snapshot."""
        try:
            async for event in self.stream_events(job_id):
                pass
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            while True:
                snapshot = await self.job(job_id)
                if snapshot["state"] in ("done", "failed", "cancelled"):
                    break
                await self._sleep(poll)
        return await self.job(job_id)

    # ------------------------------------------------------------------
    async def wait_ready(self, attempts: int = 50,
                         delay: float = 0.2) -> dict:
        """Poll ``/healthz`` until the service answers (boot helper for
        scripts and CI smoke jobs)."""
        last: Exception | None = None
        for _ in range(attempts):
            try:
                return await self.healthz()
            except (ConnectionError, OSError, ServiceError) as exc:
                last = exc
                await asyncio.sleep(delay)
        raise ServiceError(
            f"service at {self.host}:{self.port} never became ready: {last}"
        )


def _retry_after(headers: dict) -> float | None:
    try:
        return float(headers["retry-after"])
    except (KeyError, ValueError):
        return None


def _dechunk(blob: bytes) -> bytes:
    """Reassemble a fully-buffered chunked body (non-streaming reads
    that happened to hit a chunked response)."""
    out = b""
    while blob:
        size_line, _, rest = blob.partition(b"\r\n")
        try:
            size = int(size_line.strip() or b"0", 16)
        except ValueError:
            break
        if size == 0:
            break
        out += rest[:size]
        blob = rest[size + 2:]
    return out
