"""Stdlib JSON-over-HTTP front end for :class:`AdvisorService`.

A deliberately small HTTP/1.1 server on ``asyncio`` streams — no
third-party web framework, mirroring the repo's no-dependency rule.

Routes::

    GET  /healthz                 -> {"ok": true, ...}
    GET  /v1/stats                -> service counters
    GET  /v1/contexts             -> registered context descriptions
    GET  /v1/algorithms           -> registered selection algorithms
                                     (+ their option schemas)
    POST /v1/tune                 -> {"context": ..., ...payload}
    POST /v1/sweep                -> (same shape)
    POST /v1/estimate_size        -> (same shape)
    POST /v1/whatif_cost          -> (same shape)
    POST /v1/jobs                 -> {"context", "kind", "tenant"?,
                                     "priority"?, "deadline_s"?,
                                     "retries"?, "retry_backoff"?,
                                     ...payload}
                                     submit a tune/sweep job
    GET  /v1/jobs                 -> {"jobs": [snapshots...]}
                                     (?tenant=X filters to one tenant)
    GET  /v1/jobs/<id>            -> job snapshot (poll)
    GET  /v1/jobs/<id>/events     -> chunked NDJSON progress stream
                                     (?after=N resumes past seq N)
    POST /v1/jobs/<id>/cancel     -> job snapshot after the request

POST bodies are JSON objects carrying ``context`` plus the request
payload.  A full request queue returns **503** with a ``Retry-After``
header (the service's backpressure surfaced honestly), a tenant over
its admission quota **429** (per-tenant pressure, also with
``Retry-After``), unknown contexts/arguments **400**, unknown
resources/jobs **404**, and internal failures **500** with the error
text in the JSON body.

The events stream answers ``200`` with ``Transfer-Encoding: chunked``
and one JSON event per line, flushed as the advisor emits them —
``curl -N`` (or :meth:`AdvisorClient.stream_events`) tails a running
tune's greedy steps live; the stream closes after the terminal state
event.
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import parse_qs

from repro.advisor import algorithms
from repro.errors import (
    BackpressureError,
    JobError,
    QuotaExceededError,
    ReproError,
    ServiceError,
)
from repro.service import wire
from repro.service.service import AdvisorService

#: maximum accepted request body (tuning payloads are tiny).
MAX_BODY_BYTES = 1 << 20


def describe_algorithms() -> dict:
    """The ``GET /v1/algorithms`` body: every registered selection
    algorithm with its summary and option schema, plus the default
    ``AdvisorOptions.algorithm`` value."""
    return {
        "default": algorithms.DEFAULT_ALGORITHM,
        "algorithms": [
            {
                "name": name,
                "summary": cls.summary,
                "options": cls.options_schema(),
            }
            for name, cls in sorted(algorithms.registered().items())
        ],
    }
_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class ServiceHTTPServer:
    """Serves one :class:`AdvisorService` over HTTP."""

    def __init__(self, service: AdvisorService, host: str = "127.0.0.1",
                 port: int = 8765) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start serving (also starts the service itself);
        ``port=0`` binds an ephemeral port, re-read from ``self.port``."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, drain: bool = True) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop(drain=drain)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def __aenter__(self) -> "ServiceHTTPServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._handle_request(reader)
        except ConnectionError:  # pragma: no cover - client went away
            writer.close()
            return
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            status, payload = 500, {"error": str(exc)}
        if hasattr(payload, "__aiter__"):
            await self._write_stream(writer, status, payload)
            return
        body = json.dumps(payload).encode()
        headers = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        if status in (429, 503):
            headers.append("Retry-After: 1")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode() + body)
        try:
            await writer.drain()
        except ConnectionError:  # pragma: no cover - client went away
            pass
        writer.close()

    async def _write_stream(
        self, writer: asyncio.StreamWriter, status: int, events,
    ) -> None:
        """Write an async iterator of JSON events as a chunked NDJSON
        response, flushing each event as it arrives (live tail)."""
        headers = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}",
            "Content-Type: application/x-ndjson",
            "Transfer-Encoding: chunked",
            "Connection: close",
        ]
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode())
        try:
            await writer.drain()
            async for event in events:
                data = json.dumps(event).encode() + b"\n"
                writer.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
                await writer.drain()
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except ConnectionError:  # client hung up mid-stream — fine,
            pass                 # the job itself is unaffected
        writer.close()

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return 400, {"error": "empty request"}
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": f"malformed request line {request_line!r}"}
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad Content-Length"}
        if content_length > MAX_BODY_BYTES:
            return 400, {"error": "request body too large"}
        body = (
            await reader.readexactly(content_length)
            if content_length else b""
        )
        status, payload = await self._route(method, path, body)
        if (
            path.partition("?")[0].startswith("/v1/")
            and isinstance(payload, dict)
        ):
            # Every /v1 JSON response carries the envelope version the
            # client asserts (event streams are raw NDJSON lines and
            # stay unstamped).
            payload = wire.stamp(payload)
        return status, payload

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, object]:
        path, _, query = path.partition("?")
        if path.startswith("/v1/jobs"):
            return await self._route_jobs(method, path, query, body)
        if method == "GET":
            if path == "/healthz":
                return 200, {
                    "ok": True,
                    "running": self.service.started,
                    # Disk-pressure degradation is a health property:
                    # the tier still serves, but durability is
                    # best-effort until the disk recovers.
                    "degraded": self.service.degraded,
                    "contexts": sorted(self.service.contexts),
                }
            if path == "/v1/stats":
                return 200, self.service.stats()
            if path == "/v1/contexts":
                return 200, {
                    "contexts": [
                        ctx.describe()
                        for _, ctx in sorted(self.service.contexts.items())
                    ]
                }
            if path == "/v1/algorithms":
                return 200, describe_algorithms()
            return 404, {"error": f"no such resource {path!r}"}
        if method != "POST":
            return 405, {"error": f"method {method} not allowed"}
        kind = path.removeprefix("/v1/")
        if "/" in kind or not kind:
            return 404, {"error": f"no such resource {path!r}"}
        payload, error = self._parse_body(body)
        if error is not None:
            return error
        try:
            # Closed envelope: wrong schema_version or any unknown
            # top-level field answers 400 naming it, before routing.
            wire.validate_request(kind, payload)
        except ServiceError as exc:
            return 400, {"error": str(exc)}
        payload.pop("schema_version", None)
        context = payload.pop("context", None)
        if not isinstance(context, str):
            return 400, {"error": "body needs a 'context' string"}
        try:
            # wait=False: a full queue surfaces as 503 immediately
            # rather than an unbounded number of parked connections.
            result = await self.service.request(
                kind, context, payload, wait=False
            )
        except BackpressureError as exc:
            return 503, {"error": str(exc)}
        except (ServiceError, ReproError) as exc:
            return 400, {"error": str(exc)}
        return 200, result

    @staticmethod
    def _parse_body(body: bytes) -> "tuple[dict, None] | tuple[None, tuple]":
        try:
            payload = json.loads(body.decode() or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            return None, (400, {"error": f"bad JSON body: {exc}"})
        if not isinstance(payload, dict):
            return None, (400, {"error": "JSON body must be an object"})
        return payload, None

    async def _route_jobs(
        self, method: str, path: str, query: str, body: bytes
    ) -> tuple[int, object]:
        """The ``/v1/jobs`` surface: submit, list, poll, stream,
        cancel."""
        parts = [p for p in path.removeprefix("/v1/jobs").split("/") if p]
        if not parts:
            if method == "GET":
                tenant = None
                params = parse_qs(query)
                if "tenant" in params:
                    tenant = params["tenant"][0]
                return 200, {
                    "jobs": self.service.jobs.list_jobs(tenant=tenant)
                }
            if method != "POST":
                return 405, {"error": f"method {method} not allowed"}
            payload, error = self._parse_body(body)
            if error is not None:
                return error
            try:
                wire.validate_job(payload.get("kind", "tune"), payload)
            except ServiceError as exc:
                return 400, {"error": str(exc)}
            payload.pop("schema_version", None)
            context = payload.pop("context", None)
            kind = payload.pop("kind", "tune")
            tenant = payload.pop("tenant", "default")
            priority = payload.pop("priority", "normal")
            deadline_s = payload.pop("deadline_s", None)
            retries = payload.pop("retries", 0)
            retry_backoff = payload.pop("retry_backoff", None)
            if not isinstance(context, str):
                return 400, {"error": "body needs a 'context' string"}
            if not isinstance(tenant, str) or \
                    not isinstance(priority, str):
                return 400, {
                    "error": "'tenant' and 'priority' must be strings"
                }
            try:
                record = self.service.submit_job(
                    kind, context, payload,
                    tenant=tenant, priority=priority,
                    deadline_s=deadline_s, retries=retries,
                    retry_backoff=retry_backoff,
                )
            except QuotaExceededError as exc:
                # Per-tenant limit, not global pressure: 429 so clients
                # can tell "I am over quota" from "the service is full".
                return 429, {"error": str(exc)}
            except BackpressureError as exc:
                return 503, {"error": str(exc)}
            except (ServiceError, ReproError) as exc:
                return 400, {"error": str(exc)}
            return 200, record.snapshot()
        job_id = parts[0]
        action = parts[1] if len(parts) > 1 else None
        if len(parts) > 2 or action not in (None, "events", "cancel"):
            return 404, {"error": f"no such resource {path!r}"}
        try:
            record = self.service.jobs.get(job_id)
        except JobError as exc:
            return 404, {"error": str(exc)}
        if action is None:
            if method != "GET":
                return 405, {"error": f"method {method} not allowed"}
            return 200, record.snapshot()
        if action == "cancel":
            if method != "POST":
                return 405, {"error": f"method {method} not allowed"}
            return 200, self.service.cancel_job(job_id).snapshot()
        # action == "events": live chunked stream.
        if method != "GET":
            return 405, {"error": f"method {method} not allowed"}
        after = 0
        params = parse_qs(query)
        if "after" in params:
            try:
                after = int(params["after"][0])
            except ValueError:
                return 400, {"error": "'after' must be an integer"}
        return 200, self.service.job_events(job_id, after)


async def serve(
    service: AdvisorService, host: str = "127.0.0.1", port: int = 8765,
    ready_message: bool = True,
) -> None:
    """Serve until cancelled (the ``repro serve`` entry point)."""
    server = ServiceHTTPServer(service, host, port)
    await server.start()
    if ready_message:
        contexts = ", ".join(sorted(service.contexts)) or "(none)"
        print(
            f"advisor service: contexts [{contexts}] on "
            f"http://{server.host}:{server.port}",
            flush=True,
        )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop(drain=False)
