"""Stdlib JSON-over-HTTP front end for :class:`AdvisorService`.

A deliberately small HTTP/1.1 server on ``asyncio`` streams — no
third-party web framework, mirroring the repo's no-dependency rule.

Routes::

    GET  /healthz                 -> {"ok": true, ...}
    GET  /v1/stats                -> service counters
    GET  /v1/contexts             -> registered context descriptions
    POST /v1/tune                 -> {"context": ..., ...payload}
    POST /v1/sweep                -> (same shape)
    POST /v1/estimate_size        -> (same shape)
    POST /v1/whatif_cost          -> (same shape)

POST bodies are JSON objects carrying ``context`` plus the request
payload.  A full request queue returns **503** with a ``Retry-After``
header (the service's backpressure surfaced honestly), unknown
contexts/arguments **400**, and internal failures **500** with the
error text in the JSON body.
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import BackpressureError, ReproError, ServiceError
from repro.service.service import AdvisorService

#: maximum accepted request body (tuning payloads are tiny).
MAX_BODY_BYTES = 1 << 20
_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServiceHTTPServer:
    """Serves one :class:`AdvisorService` over HTTP."""

    def __init__(self, service: AdvisorService, host: str = "127.0.0.1",
                 port: int = 8765) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start serving (also starts the service itself);
        ``port=0`` binds an ephemeral port, re-read from ``self.port``."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, drain: bool = True) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop(drain=drain)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def __aenter__(self) -> "ServiceHTTPServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._handle_request(reader)
        except ConnectionError:  # pragma: no cover - client went away
            writer.close()
            return
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            status, payload = 500, {"error": str(exc)}
        body = json.dumps(payload).encode()
        headers = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        if status == 503:
            headers.append("Retry-After: 1")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode() + body)
        try:
            await writer.drain()
        except ConnectionError:  # pragma: no cover - client went away
            pass
        writer.close()

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return 400, {"error": "empty request"}
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": f"malformed request line {request_line!r}"}
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad Content-Length"}
        if content_length > MAX_BODY_BYTES:
            return 400, {"error": "request body too large"}
        body = (
            await reader.readexactly(content_length)
            if content_length else b""
        )
        return await self._route(method, path, body)

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict]:
        if method == "GET":
            if path == "/healthz":
                return 200, {
                    "ok": True,
                    "running": self.service.started,
                    "contexts": sorted(self.service.contexts),
                }
            if path == "/v1/stats":
                return 200, self.service.stats()
            if path == "/v1/contexts":
                return 200, {
                    "contexts": [
                        ctx.describe()
                        for _, ctx in sorted(self.service.contexts.items())
                    ]
                }
            return 404, {"error": f"no such resource {path!r}"}
        if method != "POST":
            return 405, {"error": f"method {method} not allowed"}
        kind = path.removeprefix("/v1/")
        if "/" in kind or not kind:
            return 404, {"error": f"no such resource {path!r}"}
        try:
            payload = json.loads(body.decode() or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": f"bad JSON body: {exc}"}
        if not isinstance(payload, dict):
            return 400, {"error": "JSON body must be an object"}
        context = payload.pop("context", None)
        if not isinstance(context, str):
            return 400, {"error": "body needs a 'context' string"}
        try:
            # wait=False: a full queue surfaces as 503 immediately
            # rather than an unbounded number of parked connections.
            result = await self.service.request(
                kind, context, payload, wait=False
            )
        except BackpressureError as exc:
            return 503, {"error": str(exc)}
        except (ServiceError, ReproError) as exc:
            return 400, {"error": str(exc)}
        return 200, result


async def serve(
    service: AdvisorService, host: str = "127.0.0.1", port: int = 8765,
    ready_message: bool = True,
) -> None:
    """Serve until cancelled (the ``repro serve`` entry point)."""
    server = ServiceHTTPServer(service, host, port)
    await server.start()
    if ready_message:
        contexts = ", ".join(sorted(service.contexts)) or "(none)"
        print(
            f"advisor service: contexts [{contexts}] on "
            f"http://{server.host}:{server.port}",
            flush=True,
        )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop(drain=False)
