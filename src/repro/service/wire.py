"""Versioned ``/v1`` wire schema for the advisor service.

One place defines the request envelope: the schema version and, per
POST surface, the exact set of allowed top-level fields.  The HTTP
layer validates every ``/v1`` POST body against it **before** routing —
a wrong ``schema_version`` or any unknown top-level field answers 400
naming the offender — and stamps ``schema_version`` into every ``/v1``
JSON response.  :class:`~repro.service.client.AdvisorClient` sends the
version with every request and asserts it on every response.

This replaces the ad-hoc routing-field checks that used to live in
:mod:`repro.service.context` (``_reject_routing``): instead of
enumerating the specific stray fields that once caused trouble
(``tenant``/``priority`` smuggled into a tune payload would skew
coalescing keys, warm-affinity signatures, and journaled re-runs), the
envelope is closed — anything not explicitly allowed is rejected at the
door, with the allowed set in the error text.

``schema_version`` is optional on requests (a bare curl still works)
but must equal :data:`SCHEMA_VERSION` when present; it is always
present on responses.  Bump the version when a field changes meaning,
not when one is added — additions just extend the allowed sets.
"""

from __future__ import annotations

from repro.errors import ServiceError

#: the ``/v1`` envelope version this server (and client) speaks.
SCHEMA_VERSION = 1

#: fields every POST body may carry.
_COMMON = frozenset({"schema_version", "context"})

#: request payload fields per synchronous POST surface.
_TUNE = frozenset({
    "budget_bytes", "budget_fraction", "variant", "seed", "options",
})
_SWEEP = frozenset({
    "budget_bytes", "budget_fractions", "variant", "seeds", "options",
})
_RETUNE = _TUNE | frozenset({"drift", "from_config", "generation"})
_ESTIMATE_SIZE = frozenset({"index"})
_WHATIF_COST = frozenset({"statement_index", "sql", "indexes"})

#: POST /v1/<kind> — allowed top-level fields.
REQUEST_FIELDS: dict[str, frozenset] = {
    "tune": _COMMON | _TUNE,
    "sweep": _COMMON | _SWEEP,
    "estimate_size": _COMMON | _ESTIMATE_SIZE,
    "whatif_cost": _COMMON | _WHATIF_COST,
}

#: POST /v1/jobs routing fields (addressed to the job tier, popped
#: before the payload reaches a context).
JOB_ROUTING = frozenset({
    "kind", "tenant", "priority", "deadline_s", "retries",
    "retry_backoff",
})

#: POST /v1/jobs — allowed top-level fields per job kind.
JOB_FIELDS: dict[str, frozenset] = {
    "tune": _COMMON | JOB_ROUTING | _TUNE,
    "sweep": _COMMON | JOB_ROUTING | _SWEEP,
    "retune": _COMMON | JOB_ROUTING | _RETUNE,
}


def check_version(payload: dict) -> None:
    """400 when the body names a version this server does not speak."""
    version = payload.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ServiceError(
            f"unsupported schema_version {version!r}; this server "
            f"speaks {SCHEMA_VERSION}"
        )


def _check_fields(payload: dict, allowed: frozenset, surface: str) -> None:
    unknown = sorted(set(payload) - allowed)
    if unknown:
        message = (
            f"unknown field(s) for {surface}: {', '.join(unknown)}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )
        routing = sorted(set(unknown) & (JOB_ROUTING - {"kind"}))
        if routing:
            message += (
                f"; routing field(s) {', '.join(routing)} ride the "
                "job submission envelope, never the payload"
            )
        raise ServiceError(message)


def validate_request(kind: str, payload: dict) -> None:
    """Validate a ``POST /v1/<kind>`` body (version + closed field
    set).  Unknown kinds pass through — the service layer owns the
    known-kind error so in-process callers get the same message."""
    check_version(payload)
    allowed = REQUEST_FIELDS.get(kind)
    if allowed is not None:
        _check_fields(payload, allowed, f"/v1/{kind}")


def validate_job(kind, payload: dict) -> None:
    """Validate a ``POST /v1/jobs`` body for the given job kind."""
    check_version(payload)
    if not isinstance(kind, str):
        raise ServiceError(f"'kind' must be a string, got {kind!r}")
    allowed = JOB_FIELDS.get(kind)
    if allowed is not None:
        _check_fields(payload, allowed, f"/v1/jobs kind={kind}")


def validate_job_payload(kind: str, payload: dict) -> None:
    """Validate an in-process job *payload* — the dict that reaches the
    job tier after the HTTP layer pops the envelope (or that a Python
    caller passes to ``submit_job`` directly).  Stricter than
    :func:`validate_job`: envelope fields (routing, context, version)
    must not be smuggled inside — they would skew coalescing keys,
    warm-affinity signatures, and journaled re-runs."""
    allowed = JOB_FIELDS.get(kind)
    if allowed is not None:
        _check_fields(payload, allowed - JOB_ROUTING - _COMMON,
                      f"a {kind} job payload")


def stamp(response: dict) -> dict:
    """The response with ``schema_version`` first (idempotent)."""
    if response.get("schema_version") == SCHEMA_VERSION:
        return response
    return {"schema_version": SCHEMA_VERSION, **response}
