"""Append-only job journal: the durable half of the job tier.

PR 5's :class:`~repro.service.jobs.JobManager` keeps every record and
event log in memory — a restart loses all queued and running work.
This module is the persistence layer underneath it: an append-only
JSONL journal in ``<cache_dir>/jobs-journal/`` that records every
submission, state transition, seq-numbered progress event, and result,
so the job tier survives a ``kill -9`` exactly like the persistent
``EstimationCache``/``CostCache`` next to it.

Layout::

    <cache_dir>/jobs-journal/
        segment-<writer>.jsonl        one append-only file per writer
        segment-<writer>.rNNNN.jsonl  rotated (sealed) segments
        writers/<writer>.json         writer presence (pid + heartbeat)
        leases/<job_id>.json          claim records (O_EXCL create)
        cancel/<job_id>               cancel-request markers
        quarantine/<writer>           watchdog-benched workers

* **Segments.**  Every process that writes the journal — the
  coordinator and each ``repro serve --worker`` — appends to its *own*
  segment file, so concurrent writers never interleave partial lines.
  A reader merges all segments: :meth:`JobJournal.replay` rebuilds the
  full per-job picture at boot, :meth:`JobJournal.refresh` tails the
  *other* writers' segments incrementally (offset-tracked, complete
  lines only) so a live coordinator sees worker progress.

* **Leases.**  Workers claim a queued job by atomically creating
  ``leases/<job_id>.json`` (``O_CREAT | O_EXCL`` — exactly one winner)
  carrying their pid and a heartbeat timestamp.  A lease is *live*
  while its owner process exists or its heartbeat is fresher than the
  TTL; :meth:`JobJournal.lease_live` is how recovery tells "a worker is
  still running this" apart from "this job died with its process".

* **Cancel markers.**  Cancellation must reach a job running in a
  *different process*: :meth:`request_cancel` drops a marker file the
  executing side polls from its progress hook (the same one-greedy-step
  latency bound as in-process cancel).

* **Writer presence.**  A lease only exists while a worker *executes* a
  job, so it cannot tell "worker alive but idle" from "no worker".
  Every writer therefore keeps a ``writers/<writer>.json`` presence
  file (pid + heartbeat, same liveness rule as leases) — announced on
  first append or explicitly via :meth:`announce_writer`, refreshed by
  :meth:`heartbeat_writer`, removed by :meth:`close`.

* **Compaction.**  :meth:`compact` rewrites the journal keeping only a
  retained job set — called at coordinator boot, after replay applies
  the bounded-history eviction rule, and only when no *other live
  writer* exists (presence file or live lease): a live worker appends
  to its open segment file and tails ours by byte offset, so a rewrite
  under it would lose its appends to an unlinked inode and wedge its
  read offsets.  Readers additionally self-heal (:meth:`refresh`
  resets an offset that no longer lands on a record boundary) and
  writers reopen their segment if its inode changed, so even a
  mis-timed compaction degrades to a re-read, not silent loss.

Durability model: every appended line is flushed to the OS immediately,
so a ``kill -9`` of the process loses nothing already appended (the
page cache survives process death); ``fsync=True`` additionally forces
each line to stable storage for machine-crash durability.
"""

from __future__ import annotations

import json
import os
import time

from repro.errors import ServiceError
from repro.service.faults import fire

#: journal format version, embedded in every line for forward safety.
_FORMAT_VERSION = 1

#: lease heartbeats older than this are stale unless the owner pid is
#: demonstrably alive.
DEFAULT_LEASE_TTL = 30.0


class JobImage:
    """The merged, replayed picture of one job across all segments."""

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        self.kind: str | None = None
        self.context: str | None = None
        self.payload: dict = {}
        self.tenant: str = "default"
        self.priority: str = "normal"
        self.created: float | None = None
        self.started: float | None = None
        self.finished: float | None = None
        self.state: str = "queued"
        self.error: str | None = None
        self.recovered: bool = False
        self.result: dict | None = None
        #: guardrail routing (submit-time): per-job deadline and retry
        #: budget, carried so workers enforce/consume them too.
        self.deadline_s: float | None = None
        self.retries: int = 0
        self.retry_backoff: float = 0.5
        #: retry progress: highest attempt seen (0 = first run), True
        #: when the terminal failure was a deadline expiry, and the
        #: earliest claim time of a backoff-parked requeue.
        self.attempt: int = 0
        self.timeout: bool = False
        self.not_before: float | None = None
        #: seq -> event dict (dedup across segments; sorted on read).
        self._events: dict[int, dict] = {}

    @property
    def events(self) -> list[dict]:
        return [self._events[seq] for seq in sorted(self._events)]

    @property
    def max_seq(self) -> int:
        return max(self._events, default=0)

    def seq_gapless(self) -> bool:
        """Whether the replayed event log is 1..N with no holes — the
        crash-recovery acceptance criterion."""
        return sorted(self._events) == list(range(1, len(self._events) + 1))


class JournalError(ServiceError):
    """Journal directory, segment, or lease problem."""


class JobJournal:
    """One process's handle on the shared job journal.

    Args:
        root: the journal directory (created if missing).
        writer_id: this process's segment name — ``coordinator`` for
            the serving process, a unique ``worker-*`` per worker.
        fsync: force every appended line to stable storage (machine-
            crash durability); off by default — process-crash
            durability only needs the flush.
        lease_ttl: heartbeat age beyond which a lease whose owner pid
            is gone counts as dead.
        max_segment_bytes: rotate this writer's segment once it grows
            past this size (None = never): the full segment is renamed
            to ``segment-<writer>.rNNNN.jsonl`` — still matched by
            every reader's segment glob, still merged by compaction —
            and appends continue in a fresh file, so a long-lived
            coordinator never rewrites one ever-growing file.
    """

    def __init__(self, root: str, writer_id: str = "coordinator",
                 *, fsync: bool = False,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 max_segment_bytes: int | None = None) -> None:
        if not writer_id or any(c in writer_id for c in "/\\. "):
            raise JournalError(
                f"writer_id must be a simple name, got {writer_id!r}"
            )
        if max_segment_bytes is not None and max_segment_bytes < 1:
            raise JournalError(
                f"max_segment_bytes must be >= 1, got {max_segment_bytes}"
            )
        self.root = root
        self.writer_id = writer_id
        self.fsync = fsync
        self.lease_ttl = lease_ttl
        self.max_segment_bytes = max_segment_bytes
        self.leases_dir = os.path.join(root, "leases")
        self.cancel_dir = os.path.join(root, "cancel")
        self.writers_dir = os.path.join(root, "writers")
        self.quarantine_dir = os.path.join(root, "quarantine")
        for path in (root, self.leases_dir, self.cancel_dir,
                     self.writers_dir, self.quarantine_dir):
            os.makedirs(path, exist_ok=True)
        self._segment_path = os.path.join(
            root, f"segment-{writer_id}.jsonl"
        )
        #: basename prefix of every segment this writer owns (live and
        #: rotated) — refresh() must never tail its own appends.
        self._own_prefix = f"segment-{writer_id}."
        self._segment = None
        self._announced = False
        #: per-foreign-segment read offsets (refresh() tail state).
        self._offsets: dict[str, int] = {}
        #: appended-line counters (stats/tests).
        self.appended = 0
        #: completed segment rotations (also the rotated-name cursor).
        self.rotations = 0

    # ------------------------------------------------------------------
    # appending (this writer's segment)
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        record["v"] = _FORMAT_VERSION
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        # Injection point *before* any byte is written: a journaling
        # layer that failed here has durably recorded nothing, which is
        # exactly what the manager's degraded-mode buffer assumes.
        fire("journal.append", writer=self.writer_id,
             job=record.get("job"))
        if not self._announced:
            self.announce_writer()
        if self._segment is not None:
            # A compaction (ours or a mis-timed foreign one) replaces
            # the segment file; appending to the old inode would write
            # into the void, so reopen by path when it changed.
            try:
                same = os.stat(self._segment_path).st_ino == \
                    os.fstat(self._segment.fileno()).st_ino
            except OSError:
                same = False
            if not same:
                self._segment.close()
                self._segment = None
        if self._segment is None:
            self._segment = open(self._segment_path, "a",
                                 encoding="utf-8")
        if self.max_segment_bytes is not None and \
                self._segment.tell() >= self.max_segment_bytes:
            self._rotate()
            self._segment = open(self._segment_path, "a",
                                 encoding="utf-8")
        self._segment.write(line)
        self._segment.flush()
        if self.fsync:
            fire("journal.fsync", writer=self.writer_id)
            os.fsync(self._segment.fileno())
        self.appended += 1

    def _rotate(self) -> None:
        """Seal the current segment under a rotated name (readers keep
        matching it; compaction keeps merging it) and leave the live
        path free for a fresh file."""
        self._close_segment()
        n = self.rotations + 1
        while True:
            target = os.path.join(
                self.root, f"segment-{self.writer_id}.r{n:04d}.jsonl"
            )
            if not os.path.exists(target):
                break
            n += 1  # pragma: no cover - survivor from a prior process
        fire("journal.rotate", writer=self.writer_id)
        os.replace(self._segment_path, target)
        self.rotations = n

    def append_submit(self, job_id: str, kind: str, context: str,
                      payload: dict, tenant: str, priority: str,
                      created: float, deadline_s: float | None = None,
                      retries: int = 0,
                      retry_backoff: float | None = None) -> None:
        record = {
            "rec": "submit", "job": job_id, "kind": kind,
            "context": context, "payload": payload, "tenant": tenant,
            "priority": priority, "created": created,
        }
        if deadline_s is not None:
            record["deadline_s"] = deadline_s
        if retries:
            record["retries"] = retries
        if retry_backoff is not None:
            record["retry_backoff"] = retry_backoff
        self._append(record)

    def append_state(self, job_id: str, state: str, ts: float,
                     error: str | None = None,
                     recovered: bool = False, attempt: int = 0,
                     timeout: bool = False,
                     not_before: float | None = None) -> None:
        record = {"rec": "state", "job": job_id, "state": state,
                  "ts": ts}
        if error is not None:
            record["error"] = error
        if recovered:
            record["recovered"] = True
        if attempt:
            record["attempt"] = attempt
        if timeout:
            record["timeout"] = True
        if not_before is not None:
            record["not_before"] = not_before
        self._append(record)

    def append_event(self, job_id: str, event: dict) -> None:
        """One seq-numbered progress event (the event carries its own
        ``seq``; replay dedups and orders on it)."""
        self._append({"rec": "event", "job": job_id, "event": event})

    def append_result(self, job_id: str, result: dict) -> None:
        self._append({"rec": "result", "job": job_id, "result": result})

    def append_mode(self, mode: str, ts: float,
                    reason: str | None = None) -> None:
        """Journal a tier-mode transition (``degraded``/``healthy``) so
        the degradation window is visible in the durable history.  Mode
        records carry no ``job`` key, so :meth:`apply` ignores them."""
        record = {"rec": "mode", "mode": mode, "ts": ts,
                  "writer": self.writer_id}
        if reason:
            record["reason"] = reason
        self._append(record)

    def _close_segment(self) -> None:
        if self._segment is not None:
            self._segment.close()
            self._segment = None

    def close(self) -> None:
        """Clean shutdown of this writer: close the segment and retire
        the presence file, so compaction elsewhere no longer waits on
        us."""
        self._close_segment()
        self.retire_writer()

    # ------------------------------------------------------------------
    # reading (all segments)
    # ------------------------------------------------------------------
    def _segment_paths(self) -> list[str]:
        try:
            names = sorted(os.listdir(self.root))
        except FileNotFoundError:
            return []
        return [
            os.path.join(self.root, name) for name in names
            if name.startswith("segment-") and name.endswith(".jsonl")
        ]

    @staticmethod
    def _read_lines(
        path: str, start: int = 0
    ) -> tuple[list[dict], int, bool]:
        """Complete newline-terminated JSON lines from ``start``; the
        returned offset stops before any partial trailing line, so an
        in-progress append from another process is re-read whole on the
        next call.  The third element is False when a *terminated* line
        failed to parse — either a torn write, or ``start`` no longer
        lands on a record boundary (the file was rewritten under us)."""
        try:
            with open(path, "rb") as fh:
                fh.seek(start)
                blob = fh.read()
        except FileNotFoundError:
            return [], start, True
        records = []
        offset = start
        clean = True
        lines = blob.split(b"\n")
        # split()'s last element is the unterminated tail (b"" when the
        # blob ends on a newline) — never a committed record.
        for raw in lines[:-1]:
            if not raw.strip():
                offset += len(raw) + 1
                continue
            try:
                obj = json.loads(raw)
            except ValueError:
                obj = None
            if not isinstance(obj, dict):
                # A torn line means the writer died mid-append; appends
                # are sequential, so nothing after it is complete.  (A
                # parsed non-dict is a line fragment that happened to
                # be valid JSON — same misalignment case.)
                clean = False
                break
            records.append(obj)
            offset += len(raw) + 1
        return records, offset, clean

    def replay(self) -> dict[str, JobImage]:
        """Merge every segment into per-job images (boot-time full
        read).  Ordering inside one job: submit fields win first-write,
        states apply in precedence (terminal > running > queued) so the
        merge is independent of cross-segment file order, events dedup
        by seq."""
        images: dict[str, JobImage] = {}
        for path in self._segment_paths():
            records, _, _ = self._read_lines(path)
            for record in records:
                self.apply(images, record)
        return images

    def refresh(self) -> list[dict]:
        """New complete records appended to *other* writers' segments
        since the last call (the coordinator's live tail of worker
        progress).

        Self-healing: a segment rewritten under us (compaction racing
        this reader) invalidates our byte offset — either the file is
        now shorter than the offset, or it regrew and the offset lands
        mid-line so the first terminated read fails to parse.  Both
        reset the offset to 0 and re-read the whole segment; re-applied
        records are harmless because :meth:`apply` folds are monotone
        (submit first-write-wins, state precedence, events seq-dedup).
        """
        out: list[dict] = []
        for path in self._segment_paths():
            # Skip every segment this writer owns — the live one AND
            # its rotated predecessors (rotation renames the live file,
            # and re-tailing our own appends as "foreign" would be
            # wasted monotone re-folds at best).
            if os.path.basename(path).startswith(self._own_prefix):
                continue
            start = self._offsets.get(path, 0)
            if start:
                try:
                    if os.path.getsize(path) < start:
                        start = 0
                except OSError:
                    start = 0
            records, offset, clean = self._read_lines(path, start)
            if start and not clean and not records:
                # Parse failure at a previously-valid offset: the file
                # was rewritten, not torn — restart from the top.
                records, offset, clean = self._read_lines(path, 0)
            self._offsets[path] = offset
            out.extend(records)
        return out

    @staticmethod
    def apply(images: dict[str, JobImage], record: dict) -> None:
        """Fold one journal record into a per-job image map (the unit
        :meth:`replay` is built from; workers use it to fold
        :meth:`refresh` tails into their own view)."""
        job_id = record.get("job")
        if not isinstance(job_id, str):
            return
        image = images.get(job_id)
        if image is None:
            image = images[job_id] = JobImage(job_id)
        rec = record.get("rec")
        if rec == "submit" and image.kind is None:
            image.kind = record.get("kind")
            image.context = record.get("context")
            image.payload = dict(record.get("payload") or {})
            image.tenant = record.get("tenant", "default")
            image.priority = record.get("priority", "normal")
            image.created = record.get("created")
            image.deadline_s = record.get("deadline_s")
            image.retries = int(record.get("retries", 0))
            image.retry_backoff = float(record.get("retry_backoff", 0.5))
        elif rec == "state":
            state = record.get("state")
            rank = {"queued": 0, "running": 1}
            attempt = int(record.get("attempt", 0))
            # Precedence is per-attempt lexicographic: within an
            # attempt terminal > running > queued (last terminal
            # writer wins, as before), while a *higher-attempt* record
            # — a retry requeue after a failed run — out-ranks anything
            # the earlier attempt wrote.  Pre-retry journals carry no
            # attempt field (= 0), so their fold is unchanged.
            if (attempt, rank.get(state, 2)) >= \
                    (image.attempt, rank.get(image.state, 2)):
                image.state = state
                image.error = record.get("error")
                image.recovered = bool(record.get("recovered"))
                image.timeout = bool(record.get("timeout"))
                image.attempt = max(image.attempt, attempt)
                image.not_before = (
                    record.get("not_before") if state == "queued"
                    else None
                )
            if state == "running" and image.started is None:
                image.started = record.get("ts")
            if state not in rank:
                image.finished = record.get("ts")
        elif rec == "event":
            event = record.get("event")
            if isinstance(event, dict) and isinstance(
                    event.get("seq"), int):
                image._events.setdefault(event["seq"], event)
        elif rec == "result":
            image.result = record.get("result")

    # ------------------------------------------------------------------
    # leases
    # ------------------------------------------------------------------
    def _lease_path(self, job_id: str) -> str:
        return os.path.join(self.leases_dir, f"{job_id}.json")

    def claim(self, job_id: str) -> bool:
        """Atomically claim a job for this writer; False if any lease
        exists (live or stale — takeover goes through
        :meth:`break_lease` so it stays an explicit decision)."""
        payload = json.dumps({
            "job": job_id, "writer": self.writer_id,
            "pid": os.getpid(), "heartbeat": time.time(),
        }, sort_keys=True)
        try:
            fd = os.open(self._lease_path(job_id),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(payload)
        return True

    def heartbeat(self, job_id: str) -> None:
        """Refresh this writer's lease timestamp (atomic replace)."""
        path = self._lease_path(job_id)
        tmp = f"{path}.{self.writer_id}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({
                "job": job_id, "writer": self.writer_id,
                "pid": os.getpid(), "heartbeat": time.time(),
            }, sort_keys=True))
        os.replace(tmp, path)

    def release(self, job_id: str) -> None:
        try:
            os.remove(self._lease_path(job_id))
        except FileNotFoundError:
            pass

    def lease_info(self, job_id: str) -> dict | None:
        try:
            with open(self._lease_path(job_id),
                      encoding="utf-8") as fh:
                return json.load(fh)
        except (FileNotFoundError, ValueError):
            return None

    def _owner_live(self, info: dict) -> bool:
        """Shared liveness rule for leases and writer presence: the
        owning pid is alive, or — when pid liveness cannot decide (pid
        reuse, remote filesystems) — the heartbeat is fresher than the
        TTL."""
        pid = info.get("pid")
        if isinstance(pid, int):
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return False
            except PermissionError:  # pragma: no cover - exists, not ours
                return True
            else:
                return True
        heartbeat = info.get("heartbeat", 0.0)
        return (time.time() - heartbeat) < self.lease_ttl

    def lease_live(self, job_id: str) -> bool:
        """Whether a lease exists whose owner is still working."""
        info = self.lease_info(job_id)
        return info is not None and self._owner_live(info)

    def break_lease(self, job_id: str) -> bool:
        """Remove a dead lease (owner gone); False if it is live."""
        if self.lease_live(job_id):
            return False
        self.release(job_id)
        return True

    def live_leases(self) -> list[dict]:
        out = []
        for job_id, info in self.leases():
            if self.lease_live(job_id):
                out.append(info)
        return out

    def leases(self) -> list[tuple[str, dict]]:
        """Every lease on disk, live or dead, as ``(job_id, info)`` —
        the watchdog's sweep input (it tells live from dead itself)."""
        out = []
        try:
            names = sorted(os.listdir(self.leases_dir))
        except FileNotFoundError:
            return out
        for name in names:
            if not name.endswith(".json"):
                continue
            job_id = name[:-len(".json")]
            info = self.lease_info(job_id)
            if info is not None:
                out.append((job_id, info))
        return out

    # ------------------------------------------------------------------
    # cancel markers
    # ------------------------------------------------------------------
    def request_cancel(self, job_id: str) -> None:
        path = os.path.join(self.cancel_dir, job_id)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(str(time.time()))

    def cancel_requested(self, job_id: str) -> bool:
        return os.path.exists(os.path.join(self.cancel_dir, job_id))

    def clear_cancel(self, job_id: str) -> None:
        try:
            os.remove(os.path.join(self.cancel_dir, job_id))
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # worker quarantine
    # ------------------------------------------------------------------
    def _quarantine_path(self, writer_id: str) -> str:
        return os.path.join(self.quarantine_dir, writer_id)

    def quarantine_writer(self, writer_id: str,
                          reason: str = "") -> None:
        """Mark a writer as untrusted: its claim loop must stop taking
        jobs.  Dropped by the coordinator's watchdog after repeated
        lease breaks; persists across restarts until explicitly
        cleared (a crash-looping worker binary stays benched)."""
        with open(self._quarantine_path(writer_id), "w",
                  encoding="utf-8") as fh:
            fh.write(json.dumps({
                "writer": writer_id, "reason": reason,
                "ts": time.time(),
            }, sort_keys=True))

    def writer_quarantined(self, writer_id: str) -> bool:
        return os.path.exists(self._quarantine_path(writer_id))

    def clear_quarantine(self, writer_id: str) -> None:
        try:
            os.remove(self._quarantine_path(writer_id))
        except FileNotFoundError:
            pass

    def quarantined_writers(self) -> list[str]:
        try:
            return sorted(os.listdir(self.quarantine_dir))
        except FileNotFoundError:
            return []

    # ------------------------------------------------------------------
    # writer presence
    # ------------------------------------------------------------------
    def _writer_path(self, writer_id: str) -> str:
        return os.path.join(self.writers_dir, f"{writer_id}.json")

    def announce_writer(self) -> None:
        """Register this process as a live writer (atomic replace).
        Called implicitly on first append; workers call it eagerly at
        startup so compaction elsewhere sees them even while idle —
        leases only exist while a job executes, so without presence an
        alive-but-idle worker would be invisible."""
        path = self._writer_path(self.writer_id)
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({
                "writer": self.writer_id, "pid": os.getpid(),
                "heartbeat": time.time(),
            }, sort_keys=True))
        os.replace(tmp, path)
        self._announced = True

    def heartbeat_writer(self) -> None:
        """Refresh this writer's presence timestamp."""
        self.announce_writer()

    def retire_writer(self) -> None:
        try:
            os.remove(self._writer_path(self.writer_id))
        except FileNotFoundError:
            pass
        self._announced = False

    def writer_info(self, writer_id: str) -> dict | None:
        try:
            with open(self._writer_path(writer_id),
                      encoding="utf-8") as fh:
                return json.load(fh)
        except (FileNotFoundError, ValueError):
            return None

    def writer_live(self, writer_id: str) -> bool:
        """Same liveness rule as :meth:`lease_live`."""
        info = self.writer_info(writer_id)
        return info is not None and self._owner_live(info)

    def live_writers(self) -> list[dict]:
        out = []
        try:
            names = sorted(os.listdir(self.writers_dir))
        except FileNotFoundError:
            return out
        for name in names:
            if not name.endswith(".json"):
                continue
            writer_id = name[:-len(".json")]
            if self.writer_live(writer_id):
                info = self.writer_info(writer_id)
                if info is not None:
                    out.append(info)
        return out

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def compact(self, keep_ids: "set[str] | frozenset[str]") -> bool:
        """Rewrite the journal so only ``keep_ids`` survive, merging
        every segment into this writer's own.

        Boot-time only: refuses (returns False) while any other *live
        writer* exists — a presence file with a live owner, or a live
        lease (belt and braces for writers that never announced).  A
        live worker appends to its open segment file and tails ours by
        byte offset; rewriting either under it would lose appends to an
        unlinked inode and wedge its offsets.  Dead writers' presence
        files are swept instead.  The caller re-derives ``keep_ids``
        from the same replay it restores state from, which keeps
        on-disk history exactly consistent with the in-memory
        bounded-history eviction."""
        for info in self.live_writers():
            if info.get("writer") != self.writer_id:
                return False
        for info in self.live_leases():
            if info.get("writer") != self.writer_id:
                return False
        kept: list[dict] = []
        for path in self._segment_paths():
            records, _, _ = self._read_lines(path)
            kept.extend(
                record for record in records
                if record.get("job") in keep_ids
            )
        self._close_segment()
        tmp = self._segment_path + ".compact"
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in kept:
                fh.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._segment_path)
        for path in self._segment_paths():
            if path != self._segment_path:
                os.remove(path)
                self._offsets.pop(path, None)
        # Stale leases and cancel markers of dropped jobs go with them.
        for directory in (self.leases_dir, self.cancel_dir):
            for name in os.listdir(directory):
                job_id = name[:-len(".json")] \
                    if name.endswith(".json") else name
                if job_id not in keep_ids:
                    try:
                        os.remove(os.path.join(directory, name))
                    except FileNotFoundError:  # pragma: no cover
                        pass
        # Dead writers' presence files: their segments were just merged
        # away, so retire the corpses too.
        for name in os.listdir(self.writers_dir):
            if not name.endswith(".json"):
                continue
            writer_id = name[:-len(".json")]
            if writer_id != self.writer_id and \
                    not self.writer_live(writer_id):
                try:
                    os.remove(os.path.join(self.writers_dir, name))
                except FileNotFoundError:  # pragma: no cover
                    pass
        return True

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "root": self.root,
            "writer": self.writer_id,
            "appended": self.appended,
            "segments": len(self._segment_paths()),
            "rotations": self.rotations,
            "live_leases": len(self.live_leases()),
            "live_writers": len(self.live_writers()),
            "quarantined": self.quarantined_writers(),
        }
