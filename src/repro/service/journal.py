"""Append-only job journal: the durable half of the job tier.

PR 5's :class:`~repro.service.jobs.JobManager` keeps every record and
event log in memory — a restart loses all queued and running work.
This module is the persistence layer underneath it: an append-only
JSONL journal in ``<cache_dir>/jobs-journal/`` that records every
submission, state transition, seq-numbered progress event, and result,
so the job tier survives a ``kill -9`` exactly like the persistent
``EstimationCache``/``CostCache`` next to it.

Layout::

    <cache_dir>/jobs-journal/
        segment-<writer>.jsonl     one append-only file per writer
        leases/<job_id>.json       claim records (O_EXCL create)
        cancel/<job_id>            cancel-request markers

* **Segments.**  Every process that writes the journal — the
  coordinator and each ``repro serve --worker`` — appends to its *own*
  segment file, so concurrent writers never interleave partial lines.
  A reader merges all segments: :meth:`JobJournal.replay` rebuilds the
  full per-job picture at boot, :meth:`JobJournal.refresh` tails the
  *other* writers' segments incrementally (offset-tracked, complete
  lines only) so a live coordinator sees worker progress.

* **Leases.**  Workers claim a queued job by atomically creating
  ``leases/<job_id>.json`` (``O_CREAT | O_EXCL`` — exactly one winner)
  carrying their pid and a heartbeat timestamp.  A lease is *live*
  while its owner process exists or its heartbeat is fresher than the
  TTL; :meth:`JobJournal.lease_live` is how recovery tells "a worker is
  still running this" apart from "this job died with its process".

* **Cancel markers.**  Cancellation must reach a job running in a
  *different process*: :meth:`request_cancel` drops a marker file the
  executing side polls from its progress hook (the same one-greedy-step
  latency bound as in-process cancel).

* **Compaction.**  :meth:`compact` rewrites the journal keeping only a
  retained job set — called at coordinator boot, after replay applies
  the bounded-history eviction rule, and only when no other writer
  holds a live lease (a live worker's open segment must not be rewritten
  under it).

Durability model: every appended line is flushed to the OS immediately,
so a ``kill -9`` of the process loses nothing already appended (the
page cache survives process death); ``fsync=True`` additionally forces
each line to stable storage for machine-crash durability.
"""

from __future__ import annotations

import json
import os
import time

from repro.errors import ServiceError

#: journal format version, embedded in every line for forward safety.
_FORMAT_VERSION = 1

#: lease heartbeats older than this are stale unless the owner pid is
#: demonstrably alive.
DEFAULT_LEASE_TTL = 30.0


class JobImage:
    """The merged, replayed picture of one job across all segments."""

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        self.kind: str | None = None
        self.context: str | None = None
        self.payload: dict = {}
        self.tenant: str = "default"
        self.priority: str = "normal"
        self.created: float | None = None
        self.started: float | None = None
        self.finished: float | None = None
        self.state: str = "queued"
        self.error: str | None = None
        self.recovered: bool = False
        self.result: dict | None = None
        #: seq -> event dict (dedup across segments; sorted on read).
        self._events: dict[int, dict] = {}

    @property
    def events(self) -> list[dict]:
        return [self._events[seq] for seq in sorted(self._events)]

    @property
    def max_seq(self) -> int:
        return max(self._events, default=0)

    def seq_gapless(self) -> bool:
        """Whether the replayed event log is 1..N with no holes — the
        crash-recovery acceptance criterion."""
        return sorted(self._events) == list(range(1, len(self._events) + 1))


class JournalError(ServiceError):
    """Journal directory, segment, or lease problem."""


class JobJournal:
    """One process's handle on the shared job journal.

    Args:
        root: the journal directory (created if missing).
        writer_id: this process's segment name — ``coordinator`` for
            the serving process, a unique ``worker-*`` per worker.
        fsync: force every appended line to stable storage (machine-
            crash durability); off by default — process-crash
            durability only needs the flush.
        lease_ttl: heartbeat age beyond which a lease whose owner pid
            is gone counts as dead.
    """

    def __init__(self, root: str, writer_id: str = "coordinator",
                 *, fsync: bool = False,
                 lease_ttl: float = DEFAULT_LEASE_TTL) -> None:
        if not writer_id or any(c in writer_id for c in "/\\. "):
            raise JournalError(
                f"writer_id must be a simple name, got {writer_id!r}"
            )
        self.root = root
        self.writer_id = writer_id
        self.fsync = fsync
        self.lease_ttl = lease_ttl
        self.leases_dir = os.path.join(root, "leases")
        self.cancel_dir = os.path.join(root, "cancel")
        for path in (root, self.leases_dir, self.cancel_dir):
            os.makedirs(path, exist_ok=True)
        self._segment_path = os.path.join(
            root, f"segment-{writer_id}.jsonl"
        )
        self._segment = None
        #: per-foreign-segment read offsets (refresh() tail state).
        self._offsets: dict[str, int] = {}
        #: appended-line counters (stats/tests).
        self.appended = 0

    # ------------------------------------------------------------------
    # appending (this writer's segment)
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        record["v"] = _FORMAT_VERSION
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        if self._segment is None:
            self._segment = open(self._segment_path, "a",
                                 encoding="utf-8")
        self._segment.write(line)
        self._segment.flush()
        if self.fsync:
            os.fsync(self._segment.fileno())
        self.appended += 1

    def append_submit(self, job_id: str, kind: str, context: str,
                      payload: dict, tenant: str, priority: str,
                      created: float) -> None:
        self._append({
            "rec": "submit", "job": job_id, "kind": kind,
            "context": context, "payload": payload, "tenant": tenant,
            "priority": priority, "created": created,
        })

    def append_state(self, job_id: str, state: str, ts: float,
                     error: str | None = None,
                     recovered: bool = False) -> None:
        record = {"rec": "state", "job": job_id, "state": state,
                  "ts": ts}
        if error is not None:
            record["error"] = error
        if recovered:
            record["recovered"] = True
        self._append(record)

    def append_event(self, job_id: str, event: dict) -> None:
        """One seq-numbered progress event (the event carries its own
        ``seq``; replay dedups and orders on it)."""
        self._append({"rec": "event", "job": job_id, "event": event})

    def append_result(self, job_id: str, result: dict) -> None:
        self._append({"rec": "result", "job": job_id, "result": result})

    def close(self) -> None:
        if self._segment is not None:
            self._segment.close()
            self._segment = None

    # ------------------------------------------------------------------
    # reading (all segments)
    # ------------------------------------------------------------------
    def _segment_paths(self) -> list[str]:
        try:
            names = sorted(os.listdir(self.root))
        except FileNotFoundError:
            return []
        return [
            os.path.join(self.root, name) for name in names
            if name.startswith("segment-") and name.endswith(".jsonl")
        ]

    @staticmethod
    def _read_lines(path: str, start: int = 0) -> tuple[list[dict], int]:
        """Complete newline-terminated JSON lines from ``start``; the
        returned offset stops before any partial trailing line, so an
        in-progress append from another process is re-read whole on the
        next call."""
        try:
            with open(path, "rb") as fh:
                fh.seek(start)
                blob = fh.read()
        except FileNotFoundError:
            return [], start
        records = []
        offset = start
        lines = blob.split(b"\n")
        # split()'s last element is the unterminated tail (b"" when the
        # blob ends on a newline) — never a committed record.
        for raw in lines[:-1]:
            if not raw.strip():
                offset += len(raw) + 1
                continue
            try:
                records.append(json.loads(raw))
            except ValueError:
                # A torn line means the writer died mid-append; appends
                # are sequential, so nothing after it is complete.
                break
            offset += len(raw) + 1
        return records, offset

    def replay(self) -> dict[str, JobImage]:
        """Merge every segment into per-job images (boot-time full
        read).  Ordering inside one job: submit fields win first-write,
        states apply in precedence (terminal > running > queued) so the
        merge is independent of cross-segment file order, events dedup
        by seq."""
        images: dict[str, JobImage] = {}
        for path in self._segment_paths():
            records, _ = self._read_lines(path)
            for record in records:
                self.apply(images, record)
        return images

    def refresh(self) -> list[dict]:
        """New complete records appended to *other* writers' segments
        since the last call (the coordinator's live tail of worker
        progress)."""
        out: list[dict] = []
        for path in self._segment_paths():
            if path == self._segment_path:
                continue
            start = self._offsets.get(path, 0)
            records, offset = self._read_lines(path, start)
            self._offsets[path] = offset
            out.extend(records)
        return out

    @staticmethod
    def apply(images: dict[str, JobImage], record: dict) -> None:
        """Fold one journal record into a per-job image map (the unit
        :meth:`replay` is built from; workers use it to fold
        :meth:`refresh` tails into their own view)."""
        job_id = record.get("job")
        if not isinstance(job_id, str):
            return
        image = images.get(job_id)
        if image is None:
            image = images[job_id] = JobImage(job_id)
        rec = record.get("rec")
        if rec == "submit" and image.kind is None:
            image.kind = record.get("kind")
            image.context = record.get("context")
            image.payload = dict(record.get("payload") or {})
            image.tenant = record.get("tenant", "default")
            image.priority = record.get("priority", "normal")
            image.created = record.get("created")
        elif rec == "state":
            state = record.get("state")
            rank = {"queued": 0, "running": 1}
            # Terminal states out-rank transient ones; among terminal
            # records the last one written wins (there is at most one
            # writer of terminal state per job in practice).
            if state not in rank or \
                    rank.get(image.state, 2) <= rank.get(state, 2):
                image.state = state
                image.error = record.get("error")
                image.recovered = bool(record.get("recovered"))
            if state == "running" and image.started is None:
                image.started = record.get("ts")
            if state not in rank:
                image.finished = record.get("ts")
        elif rec == "event":
            event = record.get("event")
            if isinstance(event, dict) and isinstance(
                    event.get("seq"), int):
                image._events.setdefault(event["seq"], event)
        elif rec == "result":
            image.result = record.get("result")

    # ------------------------------------------------------------------
    # leases
    # ------------------------------------------------------------------
    def _lease_path(self, job_id: str) -> str:
        return os.path.join(self.leases_dir, f"{job_id}.json")

    def claim(self, job_id: str) -> bool:
        """Atomically claim a job for this writer; False if any lease
        exists (live or stale — takeover goes through
        :meth:`break_lease` so it stays an explicit decision)."""
        payload = json.dumps({
            "job": job_id, "writer": self.writer_id,
            "pid": os.getpid(), "heartbeat": time.time(),
        }, sort_keys=True)
        try:
            fd = os.open(self._lease_path(job_id),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(payload)
        return True

    def heartbeat(self, job_id: str) -> None:
        """Refresh this writer's lease timestamp (atomic replace)."""
        path = self._lease_path(job_id)
        tmp = f"{path}.{self.writer_id}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({
                "job": job_id, "writer": self.writer_id,
                "pid": os.getpid(), "heartbeat": time.time(),
            }, sort_keys=True))
        os.replace(tmp, path)

    def release(self, job_id: str) -> None:
        try:
            os.remove(self._lease_path(job_id))
        except FileNotFoundError:
            pass

    def lease_info(self, job_id: str) -> dict | None:
        try:
            with open(self._lease_path(job_id),
                      encoding="utf-8") as fh:
                return json.load(fh)
        except (FileNotFoundError, ValueError):
            return None

    def lease_live(self, job_id: str) -> bool:
        """Whether a lease exists whose owner is still working: the
        owning pid is alive, or — when pid liveness cannot decide (pid
        reuse, remote filesystems) — the heartbeat is fresher than the
        TTL."""
        info = self.lease_info(job_id)
        if info is None:
            return False
        pid = info.get("pid")
        if isinstance(pid, int):
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return False
            except PermissionError:  # pragma: no cover - exists, not ours
                return True
            else:
                return True
        heartbeat = info.get("heartbeat", 0.0)
        return (time.time() - heartbeat) < self.lease_ttl

    def break_lease(self, job_id: str) -> bool:
        """Remove a dead lease (owner gone); False if it is live."""
        if self.lease_live(job_id):
            return False
        self.release(job_id)
        return True

    def live_leases(self) -> list[dict]:
        out = []
        try:
            names = sorted(os.listdir(self.leases_dir))
        except FileNotFoundError:
            return out
        for name in names:
            if not name.endswith(".json"):
                continue
            job_id = name[:-len(".json")]
            if self.lease_live(job_id):
                info = self.lease_info(job_id)
                if info is not None:
                    out.append(info)
        return out

    # ------------------------------------------------------------------
    # cancel markers
    # ------------------------------------------------------------------
    def request_cancel(self, job_id: str) -> None:
        path = os.path.join(self.cancel_dir, job_id)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(str(time.time()))

    def cancel_requested(self, job_id: str) -> bool:
        return os.path.exists(os.path.join(self.cancel_dir, job_id))

    def clear_cancel(self, job_id: str) -> None:
        try:
            os.remove(os.path.join(self.cancel_dir, job_id))
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def compact(self, keep_ids: "set[str] | frozenset[str]") -> bool:
        """Rewrite the journal so only ``keep_ids`` survive, merging
        every segment into this writer's own.

        Boot-time only: refuses (returns False) while any other writer
        holds a live lease, because a live worker appends to its open
        segment file and a rewrite would drop its records.  The caller
        re-derives ``keep_ids`` from the same replay it restores state
        from, which keeps on-disk history exactly consistent with the
        in-memory bounded-history eviction."""
        for info in self.live_leases():
            if info.get("writer") != self.writer_id:
                return False
        kept: list[dict] = []
        for path in self._segment_paths():
            records, _ = self._read_lines(path)
            kept.extend(
                record for record in records
                if record.get("job") in keep_ids
            )
        self.close()
        tmp = self._segment_path + ".compact"
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in kept:
                fh.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._segment_path)
        for path in self._segment_paths():
            if path != self._segment_path:
                os.remove(path)
                self._offsets.pop(path, None)
        # Stale leases and cancel markers of dropped jobs go with them.
        for directory in (self.leases_dir, self.cancel_dir):
            for name in os.listdir(directory):
                job_id = name[:-len(".json")] \
                    if name.endswith(".json") else name
                if job_id not in keep_ids:
                    try:
                        os.remove(os.path.join(directory, name))
                    except FileNotFoundError:  # pragma: no cover
                        pass
        return True

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "root": self.root,
            "writer": self.writer_id,
            "appended": self.appended,
            "segments": len(self._segment_paths()),
            "live_leases": len(self.live_leases()),
        }
