"""Worker mode: extra processes draining the shared job journal.

``repro serve --worker`` scales the tune/sweep fleet horizontally: a
coordinator (possibly ``--dispatch-only``) accepts submissions over
``/v1/jobs`` and journals them; any number of worker processes share
the same ``--cache-dir``, claim queued jobs through journal **leases**
(atomic ``O_EXCL`` create — exactly one winner per job), execute them
against their own engine pool, and journal seq-numbered progress
events, results and terminal states.  The coordinator's poll task
folds those records back into its in-memory job records, so HTTP
clients poll and stream worker-executed jobs exactly like local ones.

The claim protocol:

1. tail the journal (:meth:`JobJournal.refresh`) and fold new records
   into this worker's merged view;
2. order the ``queued``, registered-context, unleased, uncancelled
   jobs by the same dispatch policy the coordinator's turnstile
   applies — strict priority first, weighted round-robin across
   tenants inside a priority (a persistent :class:`FairQueue` carries
   the rotation cursor between polls), submission (= sorted id) order
   within a tenant — and try to claim them in that order;
3. atomically create its lease; on success, re-tail and **verify** the
   job is still queued — a cancel that landed in the race window is
   resolved *by this worker* (terminal ``cancelled`` state journaled
   before the lease is released), because the coordinator's
   eager-cancel path defers to whoever holds the lease;
4. journal ``running``, execute through the exact
   :meth:`AdvisorService._execute` path (same per-run isolation, so
   the result is byte-identical to a sequential ``tune()``), heartbeat
   the lease from the progress hook, honor cancel markers
   (:class:`~repro.errors.JobCancelled` at the next event);
5. journal the result + terminal state, release the lease.

A worker killed mid-run leaves a lease whose pid is dead: the
coordinator's boot-time recovery (:meth:`JobManager.recover`) breaks
it and marks the job ``failed``/``recovered``, exactly like one of its
own interrupted runs.

The persistent ``EstimationCache``/``CostCache`` in the shared
``--cache-dir`` are the fleet's shared state: workers warm them for
each other (last-writer-wins JSON merge on save), never for
correctness — every run is deterministic with or without warm caches.
"""

from __future__ import annotations

import time

from repro.errors import JobCancelled, JobDeadlineExceeded
from repro.service.faults import InjectedFault, fire
from repro.service.jobs import (
    JOB_KINDS,
    TERMINAL_STATES,
    deadline_expired,
    retry_delay,
)
from repro.service.journal import JobImage
from repro.service.scheduler import FairQueue


class JobWorker:
    """One worker process's claim-execute loop over the shared journal.

    Args:
        service: an :class:`AdvisorService` built with the shared
            ``cache_dir`` and a unique ``journal_writer`` — the worker
            uses its contexts, engine and caches but never starts its
            asyncio side.  Tenant weights for the claim rotation come
            from this service's own configuration (pass the
            coordinator's ``--tenant-weight`` flags to workers too).
        poll_interval: idle sleep between journal tails.
        heartbeat_interval: lease-refresh cadence while executing
            (default: a third of the journal's lease TTL).
    """

    def __init__(self, service, *, poll_interval: float = 0.5,
                 heartbeat_interval: float | None = None) -> None:
        if service.journal is None:
            raise ValueError(
                "worker mode needs a cache_dir-backed journal"
            )
        self.service = service
        self.journal = service.journal
        self.poll_interval = poll_interval
        self.heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else self.journal.lease_ttl / 3.0
        )
        #: merged journal view (every writer, incl. our own appends).
        self._images: dict[str, JobImage] = self.journal.replay()
        # Our own segment is excluded from refresh(); prime the offsets
        # so the first refresh() only returns genuinely new records.
        self.journal.refresh()
        # Announce presence now, before any append: an alive-but-idle
        # worker holds no lease, and the presence file is what stops a
        # restarting coordinator from compacting our open segment and
        # read offsets out from under us.
        self.journal.announce_writer()
        #: claim-order policy: same strict-priority + deficit-weighted
        #: tenant rotation as the coordinator turnstile; the cursor
        #: persists across polls so fairness holds over time.
        self._fair = FairQueue(self.service.jobs.tenant_weights)
        #: jobs this worker executed (terminal), per outcome, plus
        #: attempts it re-enqueued under the retry policy.
        self.executed = {state: 0 for state in sorted(TERMINAL_STATES)}
        self.executed["retried"] = 0

    # ------------------------------------------------------------------
    def _fold(self, records: list[dict]) -> None:
        for record in records:
            self.journal.apply(self._images, record)

    def _refresh(self) -> None:
        self._fold(self.journal.refresh())

    def _claimable(self):
        """Queued, known-context, unleased, uncancelled job ids in the
        coordinator's dispatch order: strict priority, then weighted
        round-robin across tenants, then submission (= sorted id) order
        within a tenant.

        Lazily picked from a persistent :class:`FairQueue` re-parked
        with each poll's candidate set: the rotation cursor only
        advances for ids actually yielded, so when the caller claims
        the first yield (the common case) tenant fairness carries over
        between polls exactly like the coordinator's turnstile."""
        candidates = []
        for job_id in sorted(self._images):
            image = self._images[job_id]
            if image.state != "queued" or image.kind not in JOB_KINDS:
                continue
            if image.context not in self.service.contexts:
                continue
            if self.journal.cancel_requested(job_id):
                continue
            if self.journal.lease_info(job_id) is not None:
                continue
            if image.not_before is not None and \
                    image.not_before > time.time():
                continue  # retry still parked behind its backoff
            candidates.append(image)
        for lanes in self._fair.pending.values():
            lanes.clear()
        for image in candidates:
            self._fair.park(image)
        while True:
            image = self._fair.pick()
            if image is None:
                return
            yield image.job_id

    # ------------------------------------------------------------------
    def run_once(self) -> str | None:
        """Claim and execute at most one job; its id, or None when
        nothing was claimable (or this worker is quarantined)."""
        if self.journal.writer_quarantined(self.journal.writer_id):
            # Benched by the coordinator watchdog after repeated lease
            # breaks: stop taking jobs until the operator clears us.
            return None
        self._refresh()
        for job_id in self._claimable():
            if not self.journal.claim(job_id):
                continue  # another worker won the race
            # Death-mid-claim injection point: an InjectedFault here
            # propagates with the lease held — exactly the orphaned
            # claim the coordinator watchdog must break.
            fire("worker.claim", job=job_id,
                 writer=self.journal.writer_id)
            # Post-claim verify: the coordinator may have resolved the
            # job (eager cancel) between our tail and the claim.
            self._refresh()
            image = self._images[job_id]
            if image.state != "queued":
                self.journal.release(job_id)
                continue
            if self.journal.cancel_requested(job_id):
                # The cancel landed inside the claim window, so the
                # coordinator saw our lease and deferred to us: journal
                # the terminal state before letting go, or nothing ever
                # would (the claim scan skips cancel-marked jobs).
                self._resolve_cancelled(image)
                continue
            print(f"worker {self.journal.writer_id}: claimed {job_id}",
                  flush=True)
            self._execute(image)
            return job_id
        return None

    def run_forever(self, *, max_jobs: int | None = None,
                    idle_timeout: float | None = None) -> int:
        """Drain the journal until stopped: ``max_jobs`` bounds the
        number of executed jobs, ``idle_timeout`` exits after that many
        consecutive seconds with nothing claimable (both None = run
        until the process is killed).  Returns the executed-job count.
        """
        done = 0
        idle_since: float | None = None
        last_beat = time.time()
        while True:
            job_id = self.run_once()
            if job_id is not None:
                done += 1
                idle_since = None
                if max_jobs is not None and done >= max_jobs:
                    return done
                continue
            now = time.time()
            if idle_since is None:
                idle_since = now
            elif idle_timeout is not None and \
                    now - idle_since >= idle_timeout:
                return done
            if now - last_beat >= self.heartbeat_interval:
                # Keep the presence file fresh while idle, so a
                # restarting coordinator never compacts our segment
                # and offsets out from under us.
                self.journal.heartbeat_writer()
                last_beat = now
            time.sleep(self.poll_interval)

    # ------------------------------------------------------------------
    def _resolve_cancelled(self, image: JobImage) -> None:
        """Terminally resolve a claimed job whose cancel marker landed
        inside the claim window.  We hold the lease, so the
        coordinator's eager-cancel path skipped the job and the claim
        scan will keep skipping it — unless someone journals a terminal
        state it would stay ``queued`` (and count against its tenant's
        quota) forever."""
        job_id = image.job_id
        journal = self.journal
        ts = time.time()
        error = "cancelled while queued"
        journal.append_state(job_id, "cancelled", ts, error=error,
                             attempt=image.attempt)
        journal.apply(self._images, {
            "rec": "state", "job": job_id, "state": "cancelled",
            "ts": ts, "error": error,
            **({"attempt": image.attempt} if image.attempt else {}),
        })
        event = {"event": "state", "state": "cancelled",
                 "job": job_id, "error": error,
                 "seq": image.max_seq + 1}
        journal.append_event(job_id, event)
        journal.apply(self._images, {
            "rec": "event", "job": job_id, "event": event,
        })
        self.executed["cancelled"] += 1
        journal.clear_cancel(job_id)
        journal.release(job_id)

    # ------------------------------------------------------------------
    def _execute(self, image: JobImage) -> None:
        """Run one claimed job, journaling the same record sequence the
        in-process manager would: running state, seq-continued events,
        result, terminal state."""
        job_id = image.job_id
        journal = self.journal
        seq = image.max_seq
        last_beat = time.time()

        def emit(event: dict) -> None:
            nonlocal seq
            seq += 1
            event = dict(event)
            event["seq"] = seq
            journal.append_event(job_id, event)
            journal.apply(self._images, {
                "rec": "event", "job": job_id, "event": event,
            })

        def transition(state: str, ts: float,
                       error: str | None = None,
                       timeout: bool = False) -> None:
            journal.append_state(job_id, state, ts, error=error,
                                 attempt=image.attempt,
                                 timeout=timeout)
            journal.apply(self._images, {
                "rec": "state", "job": job_id, "state": state,
                "ts": ts,
                **({"error": error} if error else {}),
                **({"attempt": image.attempt} if image.attempt
                   else {}),
                **({"timeout": True} if timeout else {}),
            })
            event = {"event": "state", "state": state, "job": job_id}
            if error is not None:
                event["error"] = error
            if timeout:
                event["timeout"] = True
            emit(event)

        def progress(event: dict) -> None:
            nonlocal last_beat
            if journal.cancel_requested(job_id):
                raise JobCancelled("cancel requested")
            if deadline_expired(image.created, image.deadline_s):
                raise JobDeadlineExceeded(
                    f"job {job_id} exceeded deadline_s="
                    f"{image.deadline_s}"
                )
            now = time.time()
            if now - last_beat >= self.heartbeat_interval:
                try:
                    # A `stall` fault here models a worker whose beats
                    # silently stop: the run continues, the lease goes
                    # stale, the coordinator watchdog takes over.
                    fire("worker.heartbeat", job=job_id,
                         writer=journal.writer_id)
                    journal.heartbeat(job_id)
                    journal.heartbeat_writer()
                except InjectedFault:
                    pass  # beat skipped
                last_beat = now
            emit(dict(event))

        if deadline_expired(image.created, image.deadline_s):
            # Claimed a job already past its budget (e.g. it sat queued
            # through its whole deadline): fail it without running.
            self.executed["failed"] += 1
            transition(
                "failed", time.time(),
                error=f"deadline_s={image.deadline_s} exceeded "
                      "before completion",
                timeout=True,
            )
            journal.clear_cancel(job_id)
            journal.release(job_id)
            return

        transition("running", time.time())
        try:
            result = self.service._execute(
                image.kind, image.context, dict(image.payload),
                lane=None, progress=progress,
            )
        except JobDeadlineExceeded as exc:
            # Terminal, never retried: the deadline budgets every
            # attempt.
            self.executed["failed"] += 1
            transition("failed", time.time(), error=str(exc),
                       timeout=True)
        except JobCancelled as exc:
            self.executed["cancelled"] += 1
            transition("cancelled", time.time(), error=str(exc))
        except Exception as exc:  # noqa: BLE001 - recorded on the job
            if image.attempt < image.retries and \
                    not deadline_expired(image.created,
                                         image.deadline_s) and \
                    not journal.cancel_requested(job_id):
                self._requeue_retry(image, str(exc), emit)
            else:
                self.executed["failed"] += 1
                transition("failed", time.time(), error=str(exc))
        else:
            self.executed["done"] += 1
            journal.append_result(job_id, result)
            journal.apply(self._images, {
                "rec": "result", "job": job_id, "result": result,
            })
            transition("done", time.time())
        finally:
            journal.clear_cancel(job_id)
            journal.release(job_id)
            # Persist what this run warmed for the rest of the fleet.
            self.service.save_caches()

    def _requeue_retry(self, image: JobImage, error: str,
                       emit) -> None:
        """Re-enqueue a transiently-failed attempt (mirror of the
        coordinator's ``_schedule_retry``): journal an attempt-stamped
        ``queued`` behind the deterministic jittered backoff and emit a
        ``retry`` event.  Never journals a terminal state — any worker
        (including this one) re-claims once the backoff passes."""
        job_id = image.job_id
        attempt = image.attempt + 1
        ts = time.time()
        not_before = ts + retry_delay(job_id, attempt,
                                      image.retry_backoff)
        self.journal.append_state(job_id, "queued", ts,
                                  attempt=attempt,
                                  not_before=not_before)
        self.journal.apply(self._images, {
            "rec": "state", "job": job_id, "state": "queued",
            "ts": ts, "attempt": attempt, "not_before": not_before,
        })
        emit({"event": "retry", "job": job_id, "attempt": attempt,
              "error": error, "not_before": not_before})
        self.executed["retried"] += 1

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "writer": self.journal.writer_id,
            "executed": dict(self.executed),
            "known_jobs": len(self._images),
        }
