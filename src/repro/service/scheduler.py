"""Per-context scheduling for the tuning service: worker lanes and
warm engine affinity.

PR 4's service ran every request on ONE executor thread with ONE shared
engine: correct, but tuning runs on *different* contexts serialized
needlessly, and every run re-forked the engine pool (each
:class:`~repro.advisor.advisor.TuningAdvisor` is a fresh fork context).
This module replaces that single global executor with a
:class:`ContextScheduler`:

* **Lanes.**  Each registered context is assigned to a
  :class:`ContextLane` — a single-thread executor plus its own
  keep-alive :class:`ParallelEngine`.  A lane executes strictly one
  request at a time, so per-context runs serialize exactly as before
  (the determinism contract needs nothing more), while runs on
  different contexts overlap on multi-core hosts.  The lane count is
  capped (``--max-context-workers``); past the cap, contexts share the
  least-loaded lane, assigned stably in registration order.

* **Warm affinity.**  A lane's engine outlives its runs, and every
  context owns a stable :class:`WarmSlot` fork-context holder.  An
  advisor run forks the lane pool against the *slot* (not against the
  advisor), so a later run on the same context can find the pool still
  forked against its slot.  :meth:`ContextScheduler.prepare_warm`
  decides whether that dormant pool may serve the new run: only when
  the run's *wiring signature* — context, variant, sampling seed, and
  every advisor option except the budget — matches the signature the
  pool was forked under.  Identical wiring means the inherited
  estimator already holds, bit for bit, every estimate the new run
  would recompute (estimates are deterministic functions of the seeded
  samples), so stale workers return exactly the floats fresh ones
  would; the budget is excluded because it never enters a worker-side
  float (it only gates parent-side feasibility).  On a mismatch the
  pool is dropped and the run forks cold — always correct, never warm.

A run that fails or is cancelled mid-flight releases its lane pool
(:meth:`ContextScheduler.release`): a partially-built pool could lack
estimates a "warm" successor would rely on, so it must never be reused.

Since PR 7 the module also owns :class:`FairQueue` — the job tier's
per-context turn-taking policy (priority lanes + weighted round-robin
across tenants), sitting *in front of* the lane: the lane serializes,
the queue decides who goes next.
"""

from __future__ import annotations

import asyncio
import bisect
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from repro.parallel.engine import ParallelEngine
from repro.service.faults import fire

#: job priority lanes, strongest first — the pick order of
#: :meth:`FairQueue.pick`.
PRIORITIES = ("high", "normal", "low")


class FairQueue:
    """Per-context turn-taking for the job tier: priority lanes, with
    weighted round-robin across tenants inside each lane.

    A :class:`ContextLane` already *serializes* execution; this queue
    decides **which** parked job reaches the lane next, so one heavy
    tenant cannot starve a context.  The pick is deterministic: strict
    priority order first, then a deficit-style rotation over the
    tenants that have work — tenant names in sorted order, each served
    ``weight`` consecutive jobs per visit — so the order never depends
    on timing or hash seeds.  Items are any objects with ``tenant`` and
    ``priority`` attributes (the job tier parks its ``JobRecord``\\ s).
    """

    def __init__(self, weights: dict | None = None) -> None:
        self.weights = dict(weights or {})
        #: the item currently holding this context's turn.
        self.active = None
        #: priority -> tenant -> FIFO of parked items.
        self.pending: dict[str, dict[str, deque]] = {
            priority: {} for priority in PRIORITIES
        }
        #: priority -> (last tenant served, items served this visit).
        self._cursor: dict[str, tuple[str | None, int]] = {}

    def park(self, item) -> None:
        lanes = self.pending[item.priority]
        lanes.setdefault(item.tenant, deque()).append(item)

    def depth(self) -> int:
        return sum(
            len(q) for lanes in self.pending.values()
            for q in lanes.values()
        )

    def _weight(self, tenant: str) -> int:
        return max(int(self.weights.get(tenant, 1)), 1)

    def pick(self):
        """Pop the next item to run (None when nothing is parked)."""
        for priority in PRIORITIES:
            lanes = self.pending[priority]
            names = sorted(t for t, q in lanes.items() if q)
            if not names:
                continue
            tenant, served = self._cursor.get(priority, (None, 0))
            if tenant in names and served < self._weight(tenant):
                pass  # tenant keeps its visit
            else:
                # Advance to the next tenant with work, cyclically past
                # the cursor position (bisect keeps this deterministic
                # even when the cursor tenant has drained away).
                index = bisect.bisect_right(names, tenant or "")
                tenant = names[index % len(names)]
                served = 0
            item = lanes[tenant].popleft()
            if not lanes[tenant]:
                del lanes[tenant]
            self._cursor[priority] = (tenant, served + 1)
            return item
        return None


class WarmSlot:
    """Stable fork-context holder for one registered context.

    The engine forks worker pools against this object; the advisor of
    the moment hangs off :attr:`advisor` (set by
    ``TuningAdvisor(fork_context=slot)`` before any fork, resolved by
    worker tasks at task time), and :attr:`signature` records the
    wiring the dormant pool's inherited state matches.
    """

    def __init__(self, context_name: str) -> None:
        self.context_name = context_name
        #: the advisor whose run the pool's workers forked under.
        self.advisor = None
        #: wiring signature of the pool's inherited state (None = no
        #: reusable pool state).
        self.signature: str | None = None


class ContextLane:
    """One serial execution lane: a single worker thread plus a
    keep-alive engine shared by every context assigned here."""

    def __init__(self, index: int, engine: ParallelEngine) -> None:
        self.index = index
        self.engine = engine
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"advisor-lane-{index}"
        )
        #: serializes the *request* path per lane in asyncio-land (FIFO
        #: waiters), so an admission slot frees exactly when the lane
        #: picks a request up; jobs serialize through the single-thread
        #: executor itself.
        self.request_lock = asyncio.Lock()
        #: context names assigned to this lane (registration order).
        self.contexts: list[str] = []
        #: requests + jobs executed on this lane.
        self.executed = 0
        #: warm-pool reuses granted on this lane.
        self.warm_runs = 0

    def stats(self) -> dict:
        return {
            "index": self.index,
            "contexts": list(self.contexts),
            "executed": self.executed,
            "warm_runs": self.warm_runs,
            "engine": self.engine.stats(),
        }


class ContextScheduler:
    """Assigns contexts to lanes and manages warm engine affinity.

    Args:
        workers: engine pool size for every lane's engine (0 = one per
            CPU, 1 = sequential — lanes still overlap, only the
            *within-run* fan-out degrades).
        max_lanes: lane cap; contexts beyond it share lanes.
        primary_engine: injected engine for the first lane (the
            service's historical ``engine`` attribute, so existing
            wiring and tests keep observing the pool they injected).
    """

    def __init__(
        self,
        workers: int = 1,
        max_lanes: int = 4,
        primary_engine: ParallelEngine | None = None,
    ) -> None:
        if max_lanes < 1:
            raise ValueError(f"max_lanes must be >= 1, got {max_lanes}")
        self.workers = workers
        self.max_lanes = max_lanes
        self._primary_engine = primary_engine
        self._lanes: list[ContextLane] = []
        self._assignment: dict[str, ContextLane] = {}

    # ------------------------------------------------------------------
    @property
    def lanes(self) -> list[ContextLane]:
        return list(self._lanes)

    def lane_for(self, context_name: str) -> ContextLane:
        """The lane a context executes on (created/assigned lazily,
        stable for the context's lifetime)."""
        # `scheduler.lane` faults (delay = a hung lane lookup, error =
        # a lane that cannot be built) land before any assignment
        # mutates, so an injected failure leaves the scheduler clean.
        fire("scheduler.lane", context=context_name)
        lane = self._assignment.get(context_name)
        if lane is not None:
            return lane
        if len(self._lanes) < self.max_lanes:
            engine = (
                self._primary_engine
                if not self._lanes and self._primary_engine is not None
                else ParallelEngine(self.workers)
            )
            lane = ContextLane(len(self._lanes), engine)
            self._lanes.append(lane)
        else:
            # Stable least-loaded assignment: fewest contexts wins,
            # lowest index breaks ties — registration order decides,
            # nothing run-time dependent.
            lane = min(self._lanes, key=lambda ln: (len(ln.contexts),
                                                    ln.index))
        lane.contexts.append(context_name)
        self._assignment[context_name] = lane
        return lane

    # ------------------------------------------------------------------
    def prepare_warm(self, lane: ContextLane, slot: WarmSlot,
                     signature: str) -> bool:
        """Decide warm vs cold for a run about to execute on ``lane``
        (called on the lane thread, so per-lane state is race-free).

        Warm — reuse the dormant pool past dirty marks — only when the
        pool exists, was forked against this context's slot, and the
        wiring signature matches.  Anything else drops the pool and
        records the new signature for the *next* run to match against.
        """
        warm = (
            lane.engine.has_pool
            and lane.engine.pool_context is slot
            and slot.signature == signature
        )
        if warm:
            lane.warm_runs += 1
        else:
            lane.engine.shutdown()
            slot.signature = signature
        return warm

    def release(self, lane: ContextLane, slot: WarmSlot) -> None:
        """Drop a lane's pool and forget the slot's signature — called
        when a run fails or is cancelled mid-flight, because a
        partially-built pool may lack estimates a warm successor would
        silently rely on."""
        lane.engine.shutdown()
        slot.signature = None

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Release every lane: waits for in-flight lane work (no run is
        abandoned halfway through shared cache state), then drops each
        lane's engine pool."""
        for lane in self._lanes:
            lane.executor.shutdown(wait=wait)
        for lane in self._lanes:
            lane.engine.shutdown()

    def stats(self) -> dict:
        lanes = [lane.stats() for lane in self._lanes]
        return {
            "max_lanes": self.max_lanes,
            "lanes": lanes,
            "contexts_assigned": len(self._assignment),
            "pools_forked": sum(
                ln["engine"]["pools_forked"] for ln in lanes
            ),
            "pools_reused": sum(
                ln["engine"]["pools_reused"] for ln in lanes
            ),
            "warm_runs": sum(ln["warm_runs"] for ln in lanes),
        }
