"""Tuning-service contexts: one registered schema + workload pair.

A :class:`ServiceContext` is everything the service needs to answer
requests against one database: the catalog, the weighted workload,
shared statistics, a estimator for the ``estimate_size`` endpoint, a
what-if optimizer for ``whatif_cost``, and the request executors the
:class:`~repro.service.service.AdvisorService` queue dispatches to.

Determinism contract: ``tune``/``sweep`` requests are executed exactly
like :mod:`repro.advisor.sweep` units — a fresh seeded
:class:`SizeEstimator` per run plus :meth:`fork_view` snapshots of the
persistent caches — so a service response is byte-identical to calling
:meth:`TuningAdvisor.run` sequentially with the same wiring, no matter
what ran before it or concurrently with it.
"""

from __future__ import annotations

import json

from repro.advisor import algorithms
from repro.advisor.advisor import (
    AdvisorResult,
    TuningAdvisor,
    default_base_configuration,
    get_variant,
    quantized_size_lookup,
    variant_names,
)
from repro.advisor.retune import configuration_diff, retune_run
from repro.advisor.sweep import _run_sweep
from repro.catalog.schema import Database
from repro.compression.base import CompressionMethod
from repro.errors import ServiceError
from repro.optimizer.whatif import WhatIfOptimizer
from repro.parallel.cache import CostCache, EstimationCache
from repro.parallel.engine import ParallelEngine
from repro.physical.index_def import IndexDef
from repro.sampling.sample_manager import DEFAULT_SAMPLE_SEED, SampleManager
from repro.service.scheduler import WarmSlot
from repro.sizeest.estimator import SizeEstimator
from repro.stats.column_stats import DatabaseStats
from repro.storage.index_build import IndexKind
from repro.storage.page import quantize_bytes
from repro.workload.parser import parse_statement
from repro.workload.query import Workload

#: AdvisorOptions fields a request may override (wiring-level fields —
#: workers, cache_dir — belong to the service, not the request).
_REQUEST_OPTION_FIELDS = frozenset({
    "candidate_selection", "top_k", "strategy", "backtracking",
    "seed_fanout", "min_improvement", "enable_partial", "enable_mv",
    "enable_merging", "compression_aware_merging", "max_key_columns",
    "skyline_cluster_max", "e", "q", "delta_costing", "algorithm",
})

def parse_index_spec(database: Database, spec: dict) -> IndexDef:
    """An :class:`IndexDef` from its JSON wire form::

        {"table": "sales", "key_columns": ["sa_date"],
         "included_columns": [], "kind": "secondary", "method": "page"}
    """
    if not isinstance(spec, dict) or "table" not in spec:
        raise ServiceError(f"index spec needs a 'table': {spec!r}")
    table = spec["table"]
    database.table(table)  # raises CatalogError for unknown tables
    try:
        kind = IndexKind(spec.get("kind", "secondary"))
        method = CompressionMethod(spec.get("method", "none"))
    except ValueError as exc:
        raise ServiceError(str(exc)) from exc
    return IndexDef(
        table,
        tuple(spec.get("key_columns", ())),
        included_columns=tuple(spec.get("included_columns", ())),
        kind=kind,
        method=method,
    )


def index_to_spec(index: IndexDef) -> dict:
    """The JSON wire form of an index (inverse of
    :func:`parse_index_spec` for non-partial, non-MV indexes)."""
    return {
        "table": index.table,
        "key_columns": list(index.key_columns),
        "included_columns": list(index.included_columns),
        "kind": index.kind.value,
        "method": index.method.value,
        "display_name": index.display_name(),
    }


def serialize_result(result: AdvisorResult) -> dict:
    """An :class:`AdvisorResult` as a JSON-able payload.

    Deterministic fields live under ``result`` (two identical requests
    produce byte-identical ``result`` sections — the property the
    service's concurrency tests assert); wall-clock and counter noise
    lives under ``meta``.
    """
    ordered = sorted(result.configuration, key=lambda ix: ix.display_name())
    return {
        "result": {
            "configuration": [ix.display_name() for ix in ordered],
            "indexes": [index_to_spec(ix) for ix in ordered
                        if not ix.is_mv_index],
            "sizes": {
                ix.display_name(): result.sizes[ix] for ix in ordered
            },
            "base_cost": result.base_cost,
            "final_cost": result.final_cost,
            "improvement": result.improvement,
            "consumed_bytes": result.consumed_bytes,
            "budget_bytes": result.budget_bytes,
            "candidate_count": result.candidate_count,
            "pool_size": result.pool_size,
            "steps": list(result.steps),
        },
        "meta": {
            "elapsed_seconds": result.elapsed_seconds,
            "cache_stats": result.cache_stats,
            "cost_cache_stats": result.cost_cache_stats,
            "engine_stats": result.engine_stats,
            "delta_stats": result.delta_stats,
        },
    }


class ServiceContext:
    """One registered (database, workload) pair the service tunes.

    Args:
        name: context name clients address requests to.
        database / workload: what to tune.
        stats: shared statistics (built once when omitted).
        estimation_cache / cost_cache: the service's persistent caches
            (tune/sweep runs read fork views of them; the shared
            estimator behind ``estimate_size`` reads them directly).
        e, q: accuracy constraint of the shared estimator.
    """

    def __init__(
        self,
        name: str,
        database: Database,
        workload: Workload,
        *,
        stats: DatabaseStats | None = None,
        estimation_cache: EstimationCache | None = None,
        cost_cache: CostCache | None = None,
        cache_dir: str | None = None,
        e: float = 0.5,
        q: float = 0.9,
    ) -> None:
        self.name = name
        self.database = database
        self.workload = workload
        self.stats = stats or DatabaseStats(database)
        self.estimation_cache = estimation_cache
        self.cost_cache = cost_cache
        self.cache_dir = cache_dir
        #: frozen registration-time snapshot the tune runs fork from.
        #: The live ``estimation_cache`` keeps growing as the estimate
        #: endpoint serves requests, and a *partially* warm estimate
        #: cache can steer deduction planning — so tune runs must all
        #: see the same estimate state no matter when they execute, or
        #: concurrent-vs-sequential byte-identity would break.
        self._tune_estimates = (
            estimation_cache.fork_view()
            if estimation_cache is not None else None
        )
        #: shared estimator for the estimate/cost endpoints (default
        #: sampling seed — the same estimator wiring a plain
        #: ``TuningAdvisor`` would build).
        self.estimator = SizeEstimator(
            database, stats=self.stats, e=e, q=q, cache=estimation_cache,
        )
        self.whatif = WhatIfOptimizer(
            database, self.stats, sizes=self._size_lookup,
        )
        self.base_config = default_base_configuration(database)
        #: stable fork-context holder: the scheduler lane's engine
        #: forks worker pools against this object, so a later
        #: same-wiring tune can reuse the dormant pool instead of
        #: re-forking (see repro.service.scheduler).
        self.warm_slot = WarmSlot(name)

    # ------------------------------------------------------------------
    def _size_lookup(self, index: IndexDef) -> tuple[float, float]:
        # The advisor's own quantization policy — the estimate/cost
        # endpoints must see exactly the sizes a tune run would.
        return quantized_size_lookup(self.estimator, index)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "database": self.database.name,
            "tables": sorted(t.name for t in self.database.tables),
            "total_data_bytes": self.database.total_data_bytes(),
            "statements": len(self.workload),
            "queries": len(self.workload.queries),
            "updates": len(self.workload.updates),
        }

    # ------------------------------------------------------------------
    # request executors (synchronous; run on the service executor)
    # ------------------------------------------------------------------
    def _budget_bytes(self, payload: dict) -> float:
        if "budget_bytes" in payload:
            return float(payload["budget_bytes"])
        if "budget_fraction" in payload:
            return (
                self.database.total_data_bytes()
                * float(payload["budget_fraction"])
            )
        raise ServiceError(
            "tune/sweep payload needs 'budget_bytes' or 'budget_fraction'"
        )

    def _advisor_extra(self, payload: dict) -> dict:
        extra = dict(payload.get("options", {}))
        unknown = set(extra) - _REQUEST_OPTION_FIELDS
        if unknown:
            raise ServiceError(
                f"unknown advisor options {sorted(unknown)}; allowed: "
                f"{sorted(_REQUEST_OPTION_FIELDS)}"
            )
        if "algorithm" in extra:
            # Validate at submission time: an unknown algorithm must
            # 400 with the valid set, not 500 out of a running lane.
            name = extra["algorithm"]
            if not isinstance(name, str) or name not in algorithms.names():
                raise ServiceError(
                    f"unknown algorithm {name!r}; choose from "
                    f"{algorithms.names()}"
                )
        return extra

    def _variant(self, payload: dict) -> str:
        variant = payload.get("variant", "dtac-both")
        try:
            get_variant(variant)
        except Exception:
            raise ServiceError(
                f"unknown variant {variant!r}; choose from "
                f"{variant_names()}"
            ) from None
        return variant

    def tune_signature(self, payload: dict) -> str:
        """Wiring signature of a tune request: every input that can
        move a *worker-side* float — variant, sampling seed, and all
        advisor option overrides — excluding the budget, which only
        gates parent-side feasibility decisions.  Two requests with
        equal signatures may share a warm engine pool: the pool's
        inherited estimator state holds exactly the estimates the new
        run would recompute, bit for bit."""
        return json.dumps({
            "context": self.name,
            "variant": self._variant(payload),
            "seed": int(payload.get("seed", DEFAULT_SAMPLE_SEED)),
            "options": self._advisor_extra(payload),
        }, sort_keys=True)

    def run_tune(
        self,
        payload: dict,
        engine: ParallelEngine,
        *,
        fork_slot: WarmSlot | None = None,
        stale_ok: bool = False,
        progress=None,
    ) -> dict:
        """One advisor run, isolated exactly like a sweep unit: fresh
        seeded estimator, fork views of the persistent caches.

        ``fork_slot``/``stale_ok`` come from the scheduler's warm-
        affinity decision; ``progress`` threads the job layer's event
        hook into the advisor (one event per greedy step)."""
        budget = self._budget_bytes(payload)
        variant = self._variant(payload)
        seed = int(payload.get("seed", DEFAULT_SAMPLE_SEED))
        options = get_variant(variant).advisor_options(
            budget, **self._advisor_extra(payload)
        )
        estimator = SizeEstimator(
            self.database,
            stats=self.stats,
            manager=SampleManager(self.database, seed=seed),
            e=options.e,
            q=options.q,
            cache=(
                self._tune_estimates.fork_view()
                if self._tune_estimates is not None else None
            ),
        )
        cost_view = (
            self.cost_cache.fork_view()
            if self.cost_cache is not None else None
        )
        advisor = TuningAdvisor(
            self.database,
            self.workload,
            options,
            estimator=estimator,
            stats=self.stats,
            engine=engine,
            cost_cache=cost_view,
            progress=progress,
            fork_context=fork_slot,
            fork_stale_ok=stale_ok,
        )
        result = advisor.run()
        if cost_view is not None:
            # Cost entries replay identical arithmetic by construction
            # (sized keys), so warming later requests is result-neutral.
            self.cost_cache.absorb(cost_view)
        out = serialize_result(result)
        out["context"] = self.name
        out["variant"] = variant
        out["seed"] = seed
        return out

    # ------------------------------------------------------------------
    # continuous tuning (the recurring retune job kind)
    # ------------------------------------------------------------------
    def _drift_workload(self, payload: dict):
        """(workload, drift_info) for the run: the context workload,
        drifted to the payload's phase when a ``drift`` object rides
        along."""
        from repro.workload.drift import DriftSpec, drift_phase

        raw = payload.get("drift")
        if raw is None:
            return self.workload, None
        if not isinstance(raw, dict):
            raise ServiceError(f"'drift' must be an object, got {raw!r}")
        raw = dict(raw)
        phase = raw.pop("phase", 0)
        if not isinstance(phase, int) or isinstance(phase, bool) \
                or phase < 0:
            raise ServiceError(
                f"drift phase must be a non-negative integer, got "
                f"{phase!r}"
            )
        try:
            spec = DriftSpec.from_dict(raw)
        except Exception as exc:
            raise ServiceError(str(exc)) from exc
        workload = drift_phase(self.workload, spec, phase)
        return workload, {"phase": phase, "spec": spec.to_dict()}

    def _previous_configuration(self, payload: dict):
        """The carried-forward configuration (base + ``from_config``
        specs), or None for a first/cold retune."""
        specs = payload.get("from_config")
        if not specs:
            return None
        if not isinstance(specs, (list, tuple)):
            raise ServiceError(
                f"'from_config' must be a list of index specs, got "
                f"{specs!r}"
            )
        previous = self.base_config
        for spec in specs:
            previous = previous.add(parse_index_spec(self.database, spec))
        return previous

    def prepare_retune(self, payload: dict,
                       carried: "tuple[list, int] | None" = None) -> None:
        """Submission-time validation + carry-forward resolution for a
        retune job (mutates ``payload`` in place, **before** it is
        journaled — a recovered or worker-claimed re-run must see the
        exact previous configuration this submission resolved).

        ``carried`` is the job tier's latest completed configuration
        for this context as ``(index_specs, generation)``; it seeds
        ``from_config`` when the submission did not pin one itself.
        Bad budgets, variants, options, index specs, and drift specs
        all fail here (HTTP 400), never out of a running lane."""
        self._budget_bytes(payload)
        self._variant(payload)
        self._advisor_extra(payload)
        self._drift_workload(payload)
        if payload.get("from_config"):
            self._previous_configuration(payload)
            payload.setdefault("generation", 1)
        elif carried is not None:
            specs, generation = carried
            payload["from_config"] = specs
            payload["generation"] = generation + 1
        else:
            # Nothing to carry: the first submission of a recurring
            # retune runs cold and establishes generation 1.
            payload["generation"] = 1

    def run_retune(self, payload: dict, engine: ParallelEngine,
                   progress=None) -> dict:
        """One incremental retune, isolated exactly like
        :meth:`run_tune`: fresh seeded estimator, fork views of the
        persistent caches.  The previous configuration comes from the
        payload (``from_config``, resolved at submission), the search
        seeds the delta reference there, proposes drops of decayed
        structures, then greedy re-fills; the result carries a
        ``retune`` section (generation, diff, drift) and the event
        stream gets ``dropped``/``added``/``config_changed`` events."""
        budget = self._budget_bytes(payload)
        variant = self._variant(payload)
        seed = int(payload.get("seed", DEFAULT_SAMPLE_SEED))
        options = get_variant(variant).advisor_options(
            budget, **self._advisor_extra(payload)
        )
        workload, drift_info = self._drift_workload(payload)
        previous = self._previous_configuration(payload)
        estimator = SizeEstimator(
            self.database,
            stats=self.stats,
            manager=SampleManager(self.database, seed=seed),
            e=options.e,
            q=options.q,
            cache=(
                self._tune_estimates.fork_view()
                if self._tune_estimates is not None else None
            ),
        )
        cost_view = (
            self.cost_cache.fork_view()
            if self.cost_cache is not None else None
        )
        if previous is None:
            # Cold first generation: a plain advisor run (nothing to
            # drop from yet), identical to run_tune's wiring.
            advisor = TuningAdvisor(
                self.database,
                workload,
                options,
                estimator=estimator,
                stats=self.stats,
                engine=engine,
                cost_cache=cost_view,
                progress=progress,
            )
            result = advisor.run()
            diff_base = self.base_config
        else:
            result = retune_run(
                self.database,
                workload,
                previous,
                options,
                estimator=estimator,
                stats=self.stats,
                engine=engine,
                cost_cache=cost_view,
                progress=progress,
            )
            diff_base = previous
        if cost_view is not None:
            self.cost_cache.absorb(cost_view)
        dropped, added, kept = configuration_diff(
            diff_base, result.configuration
        )
        generation = payload.get("generation", 1)
        if progress is not None:
            if dropped:
                progress({
                    "event": "dropped",
                    "indexes": [ix.display_name() for ix in dropped],
                })
            if added:
                progress({
                    "event": "added",
                    "indexes": [ix.display_name() for ix in added],
                })
            progress({
                "event": "config_changed",
                "changed": bool(dropped or added),
                "generation": generation,
                "dropped": len(dropped),
                "added": len(added),
                "kept": len(kept),
            })
        out = serialize_result(result)
        out["context"] = self.name
        out["variant"] = variant
        out["seed"] = seed
        out["retune"] = {
            "generation": generation,
            "config_changed": bool(dropped or added),
            "dropped": [ix.display_name() for ix in dropped],
            "added": [ix.display_name() for ix in added],
            "kept": [ix.display_name() for ix in kept],
        }
        if drift_info is not None:
            out["retune"]["drift"] = drift_info
        return out

    def run_sweep(self, payload: dict, engine: ParallelEngine,
                  progress=None) -> dict:
        """A whole budget sweep / seed ablation as one unit (the sweep
        module owns per-unit isolation)."""
        variant = self._variant(payload)
        total = self.database.total_data_bytes()
        if "budget_bytes" in payload:
            budgets = [float(b) for b in payload["budget_bytes"]]
        elif "budget_fractions" in payload:
            budgets = [total * float(f) for f in payload["budget_fractions"]]
        else:
            raise ServiceError(
                "sweep payload needs 'budget_bytes' or 'budget_fractions'"
            )
        seeds = payload.get("seeds")
        sweep = _run_sweep(
            self.database,
            self.workload,
            budgets,
            seeds=[int(s) for s in seeds] if seeds else None,
            variant=variant,
            stats=self.stats,
            engine=engine,
            cache_dir=self.cache_dir,
            progress=progress,
            **self._advisor_extra(payload),
        )
        runs = []
        for run in sweep.runs:
            entry = serialize_result(run.result)
            entry["seed"] = run.seed
            entry["budget_bytes"] = run.budget_bytes
            runs.append(entry)
        return {
            "context": self.name,
            "variant": variant,
            "runs": runs,
            "meta": {
                "elapsed_seconds": sweep.elapsed_seconds,
                "workers": sweep.workers,
                "engine_stats": sweep.engine_stats,
                "estimation_cache_stats": sweep.estimation_cache_stats,
                "cost_cache_stats": sweep.cost_cache_stats,
                "delta_stats": sweep.delta_stats,
            },
        }

    def run_estimate_size(self, payload: dict) -> dict:
        """Size-estimate one structure through the shared estimator."""
        index = parse_index_spec(self.database, payload.get("index"))
        estimate = self.estimator.estimate(index)
        return {
            "context": self.name,
            "index": index_to_spec(index),
            "est_bytes": estimate.est_bytes,
            "page_quantized_bytes": quantize_bytes(estimate.est_bytes),
            "compression_fraction": estimate.compression_fraction,
            "source": estimate.source,
            "estimation_cost": estimate.cost,
            "error_mean": estimate.error.mean,
            "error_var": estimate.error.var,
        }

    def run_whatif_cost(self, payload: dict) -> dict:
        """What-if cost one statement under a hypothetical configuration
        (the base heaps plus the payload's indexes)."""
        if "statement_index" in payload:
            si = int(payload["statement_index"])
            if not 0 <= si < len(self.workload):
                raise ServiceError(
                    f"statement_index {si} out of range "
                    f"(workload has {len(self.workload)} statements)"
                )
            statement = self.workload.statements[si].statement
        elif "sql" in payload:
            statement = parse_statement(payload["sql"])
            if statement.is_select:
                statement.validate(self.database)
        else:
            raise ServiceError(
                "whatif_cost payload needs 'statement_index' or 'sql'"
            )
        config = self.base_config
        for spec in payload.get("indexes", ()):
            config = config.add(parse_index_spec(self.database, spec))
        # Cost through the stateless coster, not WhatIfOptimizer.cost:
        # clients control both the statement (ad-hoc SQL) and the
        # configuration, so routing through the optimizer would grow
        # its process-lifetime signature cache without bound in a
        # long-lived service.  Same floats either way — the optimizer
        # layer only memoizes around this exact call.
        breakdown = self.whatif.coster.cost(statement, config)
        return {
            "context": self.name,
            "statement": repr(statement),
            "indexes": [
                ix.display_name()
                for ix in sorted(config, key=lambda i: i.display_name())
            ],
            "total": breakdown.total,
            "io": breakdown.io,
            "cpu": breakdown.cpu,
            "used_mv": breakdown.used_mv,
        }
