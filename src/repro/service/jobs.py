"""Job-based serving: durable tuning jobs with streaming progress.

PR 4's endpoints answer only on completion — fine for a size estimate,
hostile for a multi-minute tuning sweep.  This module turns ``tune``
and ``sweep`` requests into **jobs**: durable records a client submits,
polls, streams, and cancels::

    queued ──────► running ──────► done
       │              │
       │              ├─────────► failed
       └──────────────┴─────────► cancelled

* **Submit** (:meth:`JobManager.submit`) creates the record and hands
  it to the per-context scheduler lane; same-context jobs at the same
  priority and tenant execute strictly in submission order (the
  determinism contract), jobs on different contexts overlap.
* **Progress** rides the advisor's progress hook: every phase
  transition and every accepted greedy step lands in the job's ordered
  event list (``seq``-numbered), appended loop-side via
  ``call_soon_threadsafe`` so lane threads never touch asyncio state.
  :meth:`JobManager.stream` is the tail -f view: an async iterator
  that yields events as they arrive and ends when the job reaches a
  terminal state.
* **Cancel** (:meth:`JobManager.cancel`) resolves queued jobs
  immediately; running jobs carry a cancel flag the progress hook
  checks, so the run unwinds (:class:`~repro.errors.JobCancelled`) at
  the next event — cancellation latency is bounded by one greedy step.
  A cancelled or failed run releases its scheduler lane and drops the
  lane's engine pool (a partially-built pool must never look warm).

Since PR 7 the job tier is **durable and multi-tenant**:

* **Write-through journal.**  With a ``cache_dir``, every submission,
  state transition, progress event and result is appended to the
  :class:`~repro.service.journal.JobJournal` before clients can
  observe it.  :meth:`JobManager.recover` replays the journal at boot:
  terminal jobs come back poll-able with their full event logs
  (``GET /v1/jobs/<id>/events?after=N`` survives restarts), ``queued``
  jobs re-enqueue and run, and interrupted ``running`` jobs are marked
  ``failed`` with a ``recovered`` marker — unless a live worker lease
  shows another process still executing them.  Restored event ``seq``
  numbers are kept, and new events continue the series, so logs stay
  gap-free across the restart boundary.

* **Priority lanes + tenant fairness.**  Submissions carry a
  ``priority`` (``high``/``normal``/``low``) and a ``tenant`` tag.
  Inside each context, the next job to run is picked high-first, and
  *within* a priority by weighted round-robin across tenants
  (:class:`FairQueue`), so one heavy client cannot starve a context.
  Per-tenant admission quotas bound how many non-terminal jobs a
  tenant may hold (:class:`~repro.errors.QuotaExceededError` → HTTP
  429), separate from the global queue bound (503).

* **Worker scale-out.**  With ``execute_jobs=False`` the manager only
  journals and tracks; separate ``repro serve --worker`` processes
  claim queued jobs through journal leases and execute them
  (:mod:`repro.service.worker`).  :meth:`apply_external` — fed by the
  service's poll task — folds the workers' journaled state
  transitions, events and results back into the in-memory records, so
  polling and streaming clients never see the difference.

Since PR 8 the tier carries **runtime guardrails** (chaos-tested via
:mod:`repro.service.faults`):

* **Deadlines.**  ``deadline_s`` on submit bounds a job's wall time
  from submission across all attempts; enforced through the same
  progress-hook path as cancel (one-greedy-step latency), journaled
  terminal ``failed`` with a ``timeout`` marker, never retried.
* **Retries.**  ``retries``/``retry_backoff`` give transient failures
  a budget: a failed attempt re-enqueues attempt-stamped behind a
  deterministic jittered exponential backoff (:func:`retry_delay`),
  and a retry that succeeds returns a result byte-identical to the
  sequential run (same lane, same isolation — the determinism
  contract holds per attempt).
* **Disk-pressure degradation.**  Journal writes hitting ``ENOSPC``/
  ``EIO`` flip the manager into ``degraded`` mode: ops buffer in
  memory (bounded), jobs keep running, ``/healthz`` reports it, and
  :meth:`JobManager.journal_probe` (poll task) replays the buffer and
  clears the flag once the disk recovers.
* **Worker watchdog.**  :meth:`JobManager.watchdog_sweep` (poll task)
  breaks dead leases, re-dispatches orphaned running jobs (or fails
  them when out of retry budget), quarantines workers after repeated
  breaks, and expires queued jobs past their deadline.

Results are byte-identical to the synchronous endpoints: a job executes
through exactly the same :meth:`ServiceContext.run_tune`/``run_sweep``
path, on the same lane, with the same per-run isolation — and a
recovered job re-runs byte-identical to its cold submission.
"""

from __future__ import annotations

import asyncio
import errno
import threading
import time
import zlib

from repro.errors import (
    BackpressureError,
    JobCancelled,
    JobDeadlineExceeded,
    JobError,
    QuotaExceededError,
)
from repro.service.scheduler import PRIORITIES, FairQueue

JOB_KINDS = ("tune", "sweep", "retune")
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: retry backoff base (seconds) when a submission asks for retries
#: without naming one.
DEFAULT_RETRY_BACKOFF = 0.5

#: write errors that flip the tier into degraded mode instead of
#: failing the operation: disk pressure and transient device errors.
#: Anything else (permissions, bad paths) is a real bug and raises.
_DEGRADED_ERRNOS = frozenset({errno.ENOSPC, errno.EIO})

#: degraded-mode replay buffer bound — beyond it the *oldest* buffered
#: journal writes drop (counted), because an unbounded buffer under a
#: disk that never recovers is its own outage.
DEGRADED_BUFFER_LIMIT = 10_000

#: lease breaks charged to one worker before the watchdog benches it.
QUARANTINE_THRESHOLD = 3


def retry_delay(job_id: str, attempt: int, backoff: float) -> float:
    """Backoff before retry ``attempt`` (1-based): exponential in the
    attempt, scaled by a *deterministic* jitter factor in [0.5, 1.5)
    derived from the job id — spreads a thundering herd of same-moment
    failures without making schedules (or tests) timing-dependent."""
    base = backoff * (2 ** (attempt - 1))
    jitter = 0.5 + (
        zlib.crc32(f"{job_id}:{attempt}".encode()) % 1000
    ) / 1000.0
    return base * jitter


def deadline_expired(created: float, deadline_s: float | None,
                     now: float | None = None) -> bool:
    """Whether a job submitted at ``created`` has overrun its budget
    (deadlines measure wall time from submission, across attempts)."""
    if deadline_s is None:
        return False
    return (now if now is not None else time.time()) - created > deadline_s


class JobRecord:
    """One submitted job: identity, routing (tenant/priority), state
    machine, ordered event log, and (on completion) the response
    payload or error text."""

    def __init__(self, job_id: str, kind: str, context: str,
                 payload: dict, tenant: str = "default",
                 priority: str = "normal",
                 deadline_s: float | None = None, retries: int = 0,
                 retry_backoff: float | None = None) -> None:
        self.id = job_id
        self.kind = kind
        self.context = context
        self.payload = dict(payload)
        self.tenant = tenant
        self.priority = priority
        #: guardrails: wall-clock budget from submission (None = no
        #: deadline) and the transient-failure retry allowance.
        self.deadline_s = deadline_s
        self.retries = retries
        self.retry_backoff = (
            DEFAULT_RETRY_BACKOFF if retry_backoff is None
            else retry_backoff
        )
        #: current attempt (0 = first run), True when the terminal
        #: failure was a deadline expiry, earliest-start for a
        #: backoff-parked retry.
        self.attempt = 0
        self.timeout = False
        self.not_before: float | None = None
        self.state = "queued"
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self.events: list[dict] = []
        self.result: dict | None = None
        self.error: str | None = None
        #: True when this record was restored from the journal as an
        #: interrupted ``running`` job (its failure is a restart, not a
        #: tuning error).
        self.recovered = False
        #: True when a worker process (not this manager) executes it.
        self.external = False
        #: cross-thread cancel flag (the lane thread's progress hook
        #: polls it; the loop side sets it).
        self.cancel = threading.Event()
        #: pulsed (loop-side) on every event append / state change so
        #: streamers wake without polling.
        self.changed = asyncio.Event()
        #: turnstile future while parked behind same-context jobs.
        self._turn: asyncio.Future | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def snapshot(self, include_result: bool = True) -> dict:
        """The JSON wire form of this job right now."""
        out = {
            "id": self.id,
            "kind": self.kind,
            "context": self.context,
            "state": self.state,
            "tenant": self.tenant,
            "priority": self.priority,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "events": len(self.events),
            "payload": dict(self.payload),
        }
        if self.recovered:
            out["recovered"] = True
        if self.deadline_s is not None:
            out["deadline_s"] = self.deadline_s
        if self.retries:
            out["retries"] = self.retries
            out["retry_backoff"] = self.retry_backoff
        if self.attempt:
            out["attempt"] = self.attempt
        if self.timeout:
            out["timeout"] = True
        if self.error is not None:
            out["error"] = self.error
        if include_result and self.result is not None:
            out["result"] = self.result
        return out


class JobManager:
    """Owns every job of one :class:`AdvisorService` instance.

    Lives on the service's event loop; lane threads only ever reach it
    through ``call_soon_threadsafe``.  History is bounded: terminal
    jobs beyond ``max_history`` are evicted oldest-first (ids of
    evicted jobs 404 afterwards — clients stream or poll results out
    before they scroll away); boot-time journal compaction applies the
    same rule to disk.

    Args:
        service: the owning :class:`AdvisorService`.
        max_history: retained-job bound (terminal jobs evict beyond).
        journal: write-through :class:`JobJournal` (None = in-memory
            only, the pre-PR-7 behavior).
        tenant_quota: per-tenant cap on non-terminal jobs (None = no
            per-tenant cap; the global ``max_pending`` bound always
            applies).
        tenant_weights: tenant -> weighted-round-robin weight (default
            1); heavier tenants get proportionally more turns inside
            each priority lane.
        execute_jobs: False makes this a dispatch-only coordinator:
            submissions journal and queue, worker processes execute.
    """

    def __init__(self, service, max_history: int = 256,
                 journal=None, tenant_quota: int | None = None,
                 tenant_weights: dict | None = None,
                 execute_jobs: bool = True) -> None:
        self.service = service
        self.max_history = max_history
        self.journal = journal
        self.tenant_quota = tenant_quota
        self.tenant_weights = dict(tenant_weights or {})
        self.execute_jobs = execute_jobs
        self.jobs: dict[str, JobRecord] = {}
        self._order: list[str] = []
        self._counter = 1
        self._tasks: set[asyncio.Task] = set()
        self._queues: dict[str, FairQueue] = {}
        #: lifecycle counters, per kind.
        self.submitted = {kind: 0 for kind in JOB_KINDS}
        self.finished = {state: 0 for state in TERMINAL_STATES}
        self.recovered_jobs = 0
        self.retried = 0
        #: disk-pressure degradation: while True, journal writes buffer
        #: in memory instead of touching the failing disk; the poll
        #: task's :meth:`journal_probe` drains the buffer and clears
        #: the flag once writes succeed again.
        self.degraded = False
        self.degraded_since: float | None = None
        self.degraded_reason: str | None = None
        self._journal_buffer: list[tuple] = []
        self.degraded_events = 0
        self.degraded_dropped = 0
        #: watchdog bookkeeping: broken-lease tallies per worker and
        #: cumulative sweep counters (surfaced in :meth:`stats`).
        self.lease_breaks: dict[str, int] = {}
        self.watchdog = {
            "sweeps": 0, "lease_breaks": 0, "requeued": 0,
            "failed": 0, "quarantined": 0, "deadline_expired": 0,
        }

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, kind: str, context: str, payload: dict,
               tenant: str = "default", priority: str = "normal",
               deadline_s: float | None = None, retries: int = 0,
               retry_backoff: float | None = None) -> JobRecord:
        """Create a job and schedule it on its context's lane."""
        if deadline_s is not None:
            try:
                deadline_s = float(deadline_s)
            except (TypeError, ValueError):
                raise JobError(
                    f"deadline_s must be a number, got {deadline_s!r}"
                ) from None
            if deadline_s <= 0:
                raise JobError("deadline_s must be > 0")
        if not isinstance(retries, int) or isinstance(retries, bool) \
                or retries < 0:
            raise JobError(
                f"retries must be a non-negative integer, got {retries!r}"
            )
        if retry_backoff is not None:
            try:
                retry_backoff = float(retry_backoff)
            except (TypeError, ValueError):
                raise JobError(
                    "retry_backoff must be a number, got "
                    f"{retry_backoff!r}"
                ) from None
            if retry_backoff < 0:
                raise JobError("retry_backoff must be >= 0")
        if kind not in JOB_KINDS:
            raise JobError(
                f"unknown job kind {kind!r}; one of {JOB_KINDS}"
            )
        if context not in self.service.contexts:
            raise JobError(
                f"unknown context {context!r}; registered: "
                f"{sorted(self.service.contexts)}"
            )
        if priority not in PRIORITIES:
            raise JobError(
                f"unknown priority {priority!r}; one of {PRIORITIES}"
            )
        if not isinstance(tenant, str) or not tenant:
            raise JobError("tenant must be a non-empty string")
        if not self.service.started or self.service._closing:
            raise JobError("service is not running")
        queued = sum(
            1 for record in self.jobs.values() if record.state == "queued"
        )
        if queued >= self.service.max_pending:
            raise BackpressureError(
                f"job queue full ({self.service.max_pending} queued); "
                "retry later"
            )
        if self.tenant_quota is not None:
            held = sum(
                1 for record in self.jobs.values()
                if record.tenant == tenant and not record.terminal
            )
            if held >= self.tenant_quota:
                raise QuotaExceededError(
                    f"tenant {tenant!r} at quota "
                    f"({self.tenant_quota} active jobs); retry later"
                )
        if kind == "retune":
            # Resolve the previous configuration INTO the payload now so
            # the journaled record is self-contained: a crash-recovery
            # re-run (or a worker re-dispatch) replays the exact same
            # retune, regardless of what other jobs finished since.
            payload = dict(payload)
            self.service.contexts[context].prepare_retune(
                payload, self._carried_configuration(context),
            )
        record = JobRecord(
            f"job-{self._counter:06d}", kind, context, payload,
            tenant=tenant, priority=priority, deadline_s=deadline_s,
            retries=retries, retry_backoff=retry_backoff,
        )
        self._counter += 1
        self._admit(record)
        return record

    def _carried_configuration(self, context: str):
        """``(index_specs, generation)`` from the most recent completed
        tune/retune job in ``context``, or ``None`` for a cold start."""
        for job_id in reversed(self._order):
            record = self.jobs.get(job_id)
            if record is None or record.context != context:
                continue
            if record.kind not in ("tune", "retune"):
                continue
            if record.state != "done" or not isinstance(record.result, dict):
                continue
            body = record.result.get("result")
            if not isinstance(body, dict):
                continue
            specs = body.get("indexes")
            if specs is None:
                continue
            generation = 1
            retune = record.result.get("retune")
            if isinstance(retune, dict):
                generation = int(retune.get("generation", 1))
            return list(specs), generation
        return None

    def _admit(self, record: JobRecord) -> None:
        """Track a new record, journal its submission, and (when this
        manager executes) start its task."""
        self.jobs[record.id] = record
        self._order.append(record.id)
        self.submitted[record.kind] += 1
        self._journal(
            "append_submit", record.id, record.kind, record.context,
            dict(record.payload), record.tenant, record.priority,
            record.created, deadline_s=record.deadline_s,
            retries=record.retries, retry_backoff=record.retry_backoff,
        )
        self._append_event(record, {
            "event": "state", "state": "queued", "job": record.id,
        })
        if self.execute_jobs:
            self._start_task(record)
        else:
            record.external = True
        self._evict()

    def _start_task(self, record: JobRecord) -> None:
        task = asyncio.get_running_loop().create_task(
            self._run_job(record)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # ------------------------------------------------------------------
    # journaling with disk-pressure degradation
    # ------------------------------------------------------------------
    def _journal(self, op: str, *args, **kwargs) -> None:
        """Every journal *write* goes through here: on ``ENOSPC``/
        ``EIO`` the tier flips to **degraded** — the op (and every one
        after it) buffers in memory, jobs keep running, and the poll
        task's :meth:`journal_probe` replays the buffer in order once
        the disk recovers.  Any other ``OSError`` is a real bug and
        still raises."""
        if self.journal is None:
            return
        if self.degraded:
            self._buffer_op(op, args, kwargs)
            return
        try:
            getattr(self.journal, op)(*args, **kwargs)
        except OSError as exc:
            if exc.errno not in _DEGRADED_ERRNOS:
                raise
            self._enter_degraded(str(exc))
            self._buffer_op(op, args, kwargs)

    def _buffer_op(self, op: str, args: tuple, kwargs: dict) -> None:
        self._journal_buffer.append((op, args, kwargs))
        self.degraded_events += 1
        if len(self._journal_buffer) > DEGRADED_BUFFER_LIMIT:
            self._journal_buffer.pop(0)
            self.degraded_dropped += 1

    def _enter_degraded(self, reason: str) -> None:
        if self.degraded:
            return
        self.degraded = True
        self.degraded_since = time.time()
        self.degraded_reason = reason
        # First thing the recovered journal will see: when and why the
        # window opened (mode records carry no job id; replay ignores
        # them).
        self._journal_buffer.insert(0, (
            "append_mode", ("degraded", self.degraded_since),
            {"reason": reason},
        ))

    def journal_probe(self) -> bool:
        """Probe-and-recover: replay the degraded-mode buffer in order;
        on full drain journal a ``healthy`` mode record and clear the
        flag.  Returns True when the tier is healthy after the call.
        Called from the service's poll task every tick."""
        if self.journal is None or not self.degraded:
            return True
        while self._journal_buffer:
            op, args, kwargs = self._journal_buffer[0]
            try:
                getattr(self.journal, op)(*args, **kwargs)
            except OSError as exc:
                if exc.errno not in _DEGRADED_ERRNOS:
                    raise
                return False  # disk still unwell; keep buffering
            self._journal_buffer.pop(0)
        self.degraded = False
        reason = self.degraded_reason
        self.degraded_reason = None
        try:
            self.journal.append_mode(
                "healthy", time.time(),
                reason=f"recovered from: {reason}" if reason else None,
            )
        except OSError as exc:
            if exc.errno not in _DEGRADED_ERRNOS:
                raise
            self._enter_degraded(str(exc))
            return False
        return True

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self) -> dict:
        """Rebuild state from the journal at boot (no-op without one).

        * terminal jobs: restored with their full event logs;
        * ``queued`` jobs: re-enqueued (bypassing backpressure/quota —
          they were already admitted once) and re-run;
        * ``running`` jobs: a live worker lease means another process
          is still executing — keep tracking it; otherwise the run died
          with its process, so the job is marked ``failed`` with a
          ``recovered`` marker (clients resubmit; a re-run is
          byte-identical to the cold submission by the determinism
          contract).

        Afterwards the journal is compacted to exactly the retained
        set, so on-disk history matches the in-memory eviction bound.
        """
        if self.journal is None:
            return {"restored": 0, "requeued": 0, "recovered": 0}
        images = self.journal.replay()
        requeued = recovered = 0
        # Journal ids are zero-padded and coordinator-assigned, so
        # sorted order is submission order.
        for job_id in sorted(images):
            image = images[job_id]
            if image.kind is None:
                continue  # events for a job whose submit never landed
            record = JobRecord(
                job_id, image.kind, image.context or "",
                image.payload, tenant=image.tenant,
                priority=image.priority,
                deadline_s=image.deadline_s, retries=image.retries,
                retry_backoff=image.retry_backoff,
            )
            if image.created is not None:
                record.created = image.created
            record.started = image.started
            record.finished = image.finished
            record.events = image.events
            record.state = image.state
            record.error = image.error
            record.recovered = image.recovered
            record.result = image.result
            record.attempt = image.attempt
            record.timeout = image.timeout
            record.not_before = image.not_before
            self.jobs[job_id] = record
            self._order.append(job_id)
            suffix = job_id.rsplit("-", 1)[-1]
            if suffix.isdigit():
                self._counter = max(self._counter, int(suffix) + 1)
            if record.terminal:
                continue
            if record.state == "running":
                if self.journal.lease_live(job_id):
                    record.external = True  # a worker still has it
                    continue
                record.state = "failed"
                record.recovered = True
                record.finished = time.time()
                record.error = (
                    "interrupted by service restart; resubmit to re-run"
                )
                self.finished["failed"] += 1
                self.recovered_jobs += 1
                recovered += 1
                self.journal.break_lease(job_id)
                self._journal(
                    "append_state", job_id, "failed", record.finished,
                    error=record.error, recovered=True,
                    attempt=record.attempt,
                )
                self._append_event(record, {
                    "event": "state", "state": "failed",
                    "job": job_id, "error": record.error,
                    "recovered": True,
                })
                continue
            # queued: run it again (or leave it for the workers).
            requeued += 1
            if self.execute_jobs:
                self._start_task(record)
            else:
                record.external = True
        self._evict()
        self.journal.compact(frozenset(self._order))
        return {
            "restored": len(self.jobs),
            "requeued": requeued,
            "recovered": recovered,
        }

    # ------------------------------------------------------------------
    # external execution (worker processes via the journal)
    # ------------------------------------------------------------------
    def apply_external(self, records: list[dict]) -> None:
        """Fold journaled records appended by *other* writers (workers)
        into the in-memory job records, so polling and streaming
        clients observe worker-executed jobs exactly like local ones."""
        for raw in records:
            record = self.jobs.get(raw.get("job", ""))
            if record is None:
                continue
            rec = raw.get("rec")
            if rec == "event":
                event = raw.get("event")
                if isinstance(event, dict) and \
                        event.get("seq") == len(record.events) + 1:
                    record.events.append(event)
                    record.changed.set()
            elif rec == "state":
                state = raw.get("state")
                if record.terminal or state not in JOB_STATES:
                    continue
                attempt = int(raw.get("attempt", 0) or 0)
                if state == "queued":
                    # Only a worker's retry requeue moves an in-memory
                    # record *back* to queued — and it always carries a
                    # strictly higher attempt.
                    if attempt <= record.attempt:
                        continue
                    record.attempt = attempt
                    record.not_before = raw.get("not_before")
                    record.started = None
                    self.retried += 1
                record.state = state
                record.attempt = max(record.attempt, attempt)
                if state == "running" and record.started is None:
                    record.started = raw.get("ts")
                if state in TERMINAL_STATES:
                    record.finished = raw.get("ts")
                    record.error = raw.get("error")
                    record.timeout = bool(raw.get("timeout"))
                    record.not_before = None
                    self.finished[state] += 1
                record.changed.set()
            elif rec == "result":
                record.result = raw.get("result")
                record.changed.set()

    def resolve_stale_cancels(self) -> None:
        """Safety net for the cancel/claim race: a cancel-marked
        ``queued`` external job whose lease is gone or dead has nobody
        left to resolve it — the claim scan skips cancel-marked jobs,
        and the worker that abandoned (or died holding) the claim may
        never have journaled a terminal state.  Called from the
        coordinator's poll task, *after* folding worker records, so a
        worker-journaled resolution wins when one exists."""
        if self.journal is None:
            return
        for record in self.jobs.values():
            if (
                record.external
                and record.state == "queued"
                and self.journal.cancel_requested(record.id)
                and not self.journal.lease_live(record.id)
            ):
                self.journal.break_lease(record.id)
                self._finish(record, "cancelled",
                             error="cancelled while queued")

    # ------------------------------------------------------------------
    # watchdog (worker liveness + queued-job deadlines)
    # ------------------------------------------------------------------
    def watchdog_sweep(self) -> dict:
        """Coordinator-side liveness sweep, called from the poll task:

        * **dead leases** break (the claim path refuses takeover, so
          somebody must), and their jobs either re-dispatch (retry
          budget left, deadline not blown) or fail terminally with the
          worker named in the error;
        * **repeat offenders** quarantine: a worker charged
          :data:`QUARANTINE_THRESHOLD` broken leases gets a persistent
          quarantine marker its claim loop honors — a crash-looping
          worker binary stops eating jobs;
        * **queued jobs past deadline** fail ``timeout`` without ever
          running (running jobs enforce their own deadline through the
          progress hook).

        Returns per-sweep counts (cumulative totals live in
        ``stats()['watchdog']``)."""
        swept = {"lease_breaks": 0, "requeued": 0, "failed": 0,
                 "quarantined": 0, "deadline_expired": 0}
        self.watchdog["sweeps"] += 1
        if self.journal is not None:
            for job_id, lease in self.journal.leases():
                if self.journal._owner_live(lease):
                    continue
                writer = lease.get("writer") or "unknown"
                self.journal.break_lease(job_id)
                swept["lease_breaks"] += 1
                count = self.lease_breaks.get(writer, 0) + 1
                self.lease_breaks[writer] = count
                if count >= QUARANTINE_THRESHOLD and \
                        not self.journal.writer_quarantined(writer):
                    self.journal.quarantine_writer(
                        writer,
                        reason=f"{count} leases broken by watchdog",
                    )
                    swept["quarantined"] += 1
                record = self.jobs.get(job_id)
                if record is None or record.terminal:
                    continue
                if record.state != "running":
                    # Died mid-claim (lease taken, no running record):
                    # breaking the lease alone re-exposes the still-
                    # queued job to the claim scan.
                    continue
                if self._retryable(record):
                    self._requeue_orphan(record, writer)
                    swept["requeued"] += 1
                else:
                    self._finish(
                        record, "failed",
                        error=f"worker {writer} died mid-run",
                    )
                    swept["failed"] += 1
        now = time.time()
        for record in list(self.jobs.values()):
            if record.terminal or record.state != "queued":
                continue
            if not deadline_expired(record.created, record.deadline_s,
                                    now):
                continue
            if record.external and self.journal is not None and \
                    self.journal.lease_live(record.id):
                continue  # claimed: that worker's hook enforces it
            self._finish(
                record, "failed",
                error=f"deadline_s={record.deadline_s} exceeded "
                      "before completion",
                timeout=True,
            )
            self._resolve_parked(record)
            swept["deadline_expired"] += 1
        for key, value in swept.items():
            self.watchdog[key] += value
        return swept

    def _requeue_orphan(self, record: JobRecord, writer: str) -> None:
        """Re-dispatch a running job whose worker died: attempt-stamped
        requeue (consumes retry budget — the dead worker may have died
        *because* of the job) behind the usual backoff."""
        record.attempt += 1
        record.state = "queued"
        record.started = None
        record.not_before = time.time() + retry_delay(
            record.id, record.attempt, record.retry_backoff
        )
        self.retried += 1
        self._journal(
            "append_state", record.id, "queued", time.time(),
            attempt=record.attempt, not_before=record.not_before,
        )
        self._append_event(record, {
            "event": "retry", "job": record.id,
            "attempt": record.attempt,
            "error": f"worker {writer} died mid-run",
            "not_before": record.not_before,
        })
        if self.execute_jobs and not record.external:
            self._start_task(record)

    # ------------------------------------------------------------------
    # turn-taking (priority + tenant fairness per context)
    # ------------------------------------------------------------------
    def _queue_for(self, context: str) -> FairQueue:
        queue = self._queues.get(context)
        if queue is None:
            queue = self._queues[context] = FairQueue(
                self.tenant_weights
            )
        return queue

    async def _acquire_turn(self, record: JobRecord) -> bool:
        """Wait for the record's turn on its context; True when the
        turn is actually granted (False: resolved while parked —
        cancelled/finished, no turn to give back)."""
        if record.terminal:
            # Cancelled before this task first ran: nothing to wait
            # for, and parking a terminal record would leave it
            # unresolvable (the pick loop skips terminal entries).
            return False
        queue = self._queue_for(record.context)
        if queue.active is None:
            queue.active = record
            return True
        future = asyncio.get_running_loop().create_future()
        record._turn = future
        queue.park(record)
        try:
            return await future
        finally:
            record._turn = None

    def _release_turn(self, record: JobRecord) -> None:
        """Give the context's turn to the next parked record (priority
        order, tenant-fair)."""
        queue = self._queues.get(record.context)
        if queue is None or queue.active is not record:
            return
        queue.active = None
        while True:
            nxt = queue.pick()
            if nxt is None:
                return
            future = nxt._turn
            if nxt.terminal or future is None or future.done():
                if future is not None and not future.done():
                    # Terminal while parked: wake its task (no turn
                    # granted) so it can unwind instead of waiting
                    # forever on a turn that will never come.
                    future.set_result(False)
                continue  # resolved while parked; skip it
            queue.active = nxt
            future.set_result(True)
            return

    def _resolve_parked(self, record: JobRecord) -> None:
        """Wake a record parked at the turnstile without granting the
        turn (cancel path)."""
        future = record._turn
        if future is not None and not future.done():
            future.set_result(False)

    # ------------------------------------------------------------------
    async def _run_job(self, record: JobRecord) -> None:
        # Backoff park (retry requeues and recovered requeues both set
        # not_before): sleep out the delay before even asking for the
        # lane turn, so a backing-off job never blocks its context.
        delay = (record.not_before or 0) - time.time()
        if delay > 0:
            await asyncio.sleep(delay)
        granted = await self._acquire_turn(record)
        if record.terminal:  # cancelled while parked / in the gap
            if granted:
                self._release_turn(record)
            return
        lane = self.service.scheduler.lane_for(record.context)
        loop = asyncio.get_running_loop()

        def work():
            # Runs on the lane thread, strictly after every earlier
            # same-lane submission.  A cancel that lands while the job
            # waits its turn resolves here, before any tuning work —
            # the lane is released untouched.
            if record.cancel.is_set():
                raise JobCancelled("cancelled while queued")
            self._check_deadline(record)
            loop.call_soon_threadsafe(self._mark_running, record)

            def progress(event: dict) -> None:
                if record.cancel.is_set():
                    raise JobCancelled("cancel requested")
                # Deadlines ride the same hook as cancel, so expiry
                # unwinds the run within one greedy step too.
                self._check_deadline(record)
                loop.call_soon_threadsafe(
                    self._append_event, record, dict(event)
                )

            return self.service._execute(
                record.kind, record.context, dict(record.payload),
                lane=lane, progress=progress,
            )

        try:
            result = await loop.run_in_executor(lane.executor, work)
        except JobDeadlineExceeded as exc:
            # Never retried: the deadline budgets *all* attempts.
            self._finish(record, "failed", error=str(exc),
                         timeout=True)
        except JobCancelled as exc:
            self._finish(record, "cancelled", error=str(exc))
        except asyncio.CancelledError:
            # Service loop torn down mid-await: the lane thread still
            # finishes (or cancels via the flag stop() sets); the
            # record must not stay non-terminal forever.
            record.cancel.set()
            self._finish(record, "cancelled", error="service stopped")
            raise
        except Exception as exc:  # noqa: BLE001 - recorded on the job
            if self._retryable(record):
                self._schedule_retry(record, str(exc))
            else:
                self._finish(record, "failed", error=str(exc))
        else:
            self._finish(record, "done", result=result)
        finally:
            self._release_turn(record)

    @staticmethod
    def _check_deadline(record: JobRecord) -> None:
        if deadline_expired(record.created, record.deadline_s):
            raise JobDeadlineExceeded(
                f"job {record.id} exceeded deadline_s="
                f"{record.deadline_s}"
            )

    def _retryable(self, record: JobRecord) -> bool:
        """Whether a just-failed attempt has retry budget left (and
        retrying still makes sense: not cancelled, not past deadline,
        service not shutting down)."""
        return (
            record.attempt < record.retries
            and not record.cancel.is_set()
            and not deadline_expired(record.created, record.deadline_s)
            and self.service.started
            and not self.service._closing
        )

    def _schedule_retry(self, record: JobRecord, error: str) -> None:
        """Re-enqueue a transiently-failed job: bump the attempt,
        journal the requeue (attempt-stamped so the fold outranks the
        failed run), park it behind a jittered exponential backoff,
        and start a fresh task.  Never journals a terminal state — a
        retried job was never failed."""
        record.attempt += 1
        record.state = "queued"
        record.started = None
        record.not_before = time.time() + retry_delay(
            record.id, record.attempt, record.retry_backoff
        )
        self.retried += 1
        self._journal(
            "append_state", record.id, "queued", time.time(),
            attempt=record.attempt, not_before=record.not_before,
        )
        self._append_event(record, {
            "event": "retry", "job": record.id,
            "attempt": record.attempt, "error": error,
            "not_before": record.not_before,
        })
        self._start_task(record)

    # ------------------------------------------------------------------
    # loop-side state transitions
    # ------------------------------------------------------------------
    def _mark_running(self, record: JobRecord) -> None:
        if record.terminal:  # cancelled in the submission race window
            return
        record.state = "running"
        record.started = time.time()
        record.not_before = None
        self._journal("append_state", record.id, "running",
                      record.started, attempt=record.attempt)
        event = {
            "event": "state", "state": "running", "job": record.id,
        }
        if record.attempt:
            event["attempt"] = record.attempt
        self._append_event(record, event)

    def _finish(self, record: JobRecord, state: str,
                result: dict | None = None,
                error: str | None = None,
                timeout: bool = False) -> None:
        if record.terminal:
            return
        record.state = state
        record.finished = time.time()
        record.result = result
        record.error = error
        record.timeout = timeout
        record.not_before = None
        self.finished[state] += 1
        if result is not None:
            self._journal("append_result", record.id, result)
        self._journal("append_state", record.id, state,
                      record.finished, error=error,
                      attempt=record.attempt, timeout=timeout)
        self._journal("clear_cancel", record.id)
        event = {"event": "state", "state": state, "job": record.id}
        if error is not None:
            event["error"] = error
        if timeout:
            event["timeout"] = True
        self._append_event(record, event)

    def _append_event(self, record: JobRecord, event: dict) -> None:
        event["seq"] = len(record.events) + 1
        record.events.append(event)
        self._journal("append_event", record.id, event)
        record.changed.set()

    def _evict(self) -> None:
        while len(self._order) > self.max_history:
            for job_id in list(self._order):
                record = self.jobs.get(job_id)
                if record is None or record.terminal:
                    self._order.remove(job_id)
                    self.jobs.pop(job_id, None)
                    break
            else:
                return  # everything live — never evict a running job

    # ------------------------------------------------------------------
    # lookup / streaming / cancel
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> JobRecord:
        record = self.jobs.get(job_id)
        if record is None:
            raise JobError(f"no such job {job_id!r}")
        return record

    def list_jobs(self, tenant: str | None = None) -> list[dict]:
        return [
            self.jobs[job_id].snapshot(include_result=False)
            for job_id in self._order if job_id in self.jobs
            and (tenant is None or self.jobs[job_id].tenant == tenant)
        ]

    def events_after(self, job_id: str, after: int = 0) -> list[dict]:
        """Every recorded event with ``seq > after`` (poll form).
        ``seq`` is gapless and 1-based, so this is a slice."""
        record = self.get(job_id)
        return record.events[max(after, 0):]

    async def stream(self, job_id: str, after: int = 0):
        """Async-iterate a job's events live, ending once the job is
        terminal and its log fully drained."""
        record = self.get(job_id)
        after = max(after, 0)
        while True:
            # seq == list index + 1 (gapless), so the unseen tail is a
            # slice — no rescan of the whole log per wake-up.
            for event in record.events[after:]:
                after = event["seq"]
                yield event
            # Terminal with nothing left to yield ends the stream — a
            # restored terminal record may legitimately have an empty
            # event log (its submit line survived a crash, its event
            # lines did not), and must not park forever.
            if record.terminal and (
                not record.events
                or record.events[-1]["seq"] <= after
            ):
                return
            record.changed.clear()
            # Re-check before parking: an event appended between the
            # snapshot above and this point re-set the flag.
            if record.events and record.events[-1]["seq"] > after:
                continue
            await record.changed.wait()

    def cancel(self, job_id: str) -> JobRecord:
        """Request cancellation: queued jobs resolve before execution,
        running jobs unwind at their next progress event, terminal jobs
        are left untouched (cancel is idempotent)."""
        record = self.get(job_id)
        if record.terminal:
            return record
        record.cancel.set()
        if self.journal is not None and record.external:
            # The executing process is elsewhere: leave a marker its
            # progress hook polls.  An unclaimed queued job can still
            # resolve eagerly below.
            self._journal("request_cancel", record.id)
        if record.state == "queued" and not (
            record.external and self.journal is not None
            and self.journal.lease_info(record.id) is not None
        ):
            # Resolve eagerly so polls see it now; the lane-side check
            # keeps the skipped execution honest.
            self._finish(record, "cancelled",
                         error="cancelled while queued")
            self._resolve_parked(record)
        return record

    def cancel_all(self) -> None:
        """Flag every non-terminal job for cancellation (service
        shutdown): running jobs unwind at their next progress event."""
        for record in self.jobs.values():
            if not record.terminal and not record.external:
                record.cancel.set()
                if record.state == "queued":
                    self._finish(record, "cancelled",
                                 error="service stopped")
                    self._resolve_parked(record)

    async def drain(self) -> None:
        """Wait until every submitted job's task has completed."""
        while self._tasks:
            await asyncio.gather(*list(self._tasks),
                                 return_exceptions=True)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        states = {state: 0 for state in JOB_STATES}
        tenants: dict[str, int] = {}
        for record in self.jobs.values():
            states[record.state] += 1
            if not record.terminal:
                tenants[record.tenant] = tenants.get(record.tenant, 0) + 1
        out = {
            "submitted": dict(self.submitted),
            "finished": dict(self.finished),
            "states": states,
            "retained": len(self.jobs),
            "recovered": self.recovered_jobs,
            "retried": self.retried,
            "tenants_active": tenants,
            "tenant_quota": self.tenant_quota,
            "parked": sum(q.depth() for q in self._queues.values()),
            "degraded": {
                "active": self.degraded,
                "since": self.degraded_since if self.degraded else None,
                "reason": self.degraded_reason,
                "buffered": len(self._journal_buffer),
                "events": self.degraded_events,
                "dropped": self.degraded_dropped,
            },
            "watchdog": {
                **self.watchdog,
                "lease_breaks_by_writer": dict(self.lease_breaks),
            },
        }
        if self.journal is not None:
            out["journal"] = self.journal.stats()
        return out
