"""Job-based serving: durable tuning jobs with streaming progress.

PR 4's endpoints answer only on completion — fine for a size estimate,
hostile for a multi-minute tuning sweep.  This module turns ``tune``
and ``sweep`` requests into **jobs**: durable records a client submits,
polls, streams, and cancels::

    queued ──────► running ──────► done
       │              │
       │              ├─────────► failed
       └──────────────┴─────────► cancelled

* **Submit** (:meth:`JobManager.submit`) creates the record and hands
  it to the per-context scheduler lane; same-context jobs execute
  strictly in submission order (the determinism contract), jobs on
  different contexts overlap.
* **Progress** rides the advisor's progress hook: every phase
  transition and every accepted greedy step lands in the job's ordered
  event list (``seq``-numbered), appended loop-side via
  ``call_soon_threadsafe`` so lane threads never touch asyncio state.
  :meth:`JobManager.stream` is the tail -f view: an async iterator
  that yields events as they arrive and ends when the job reaches a
  terminal state.
* **Cancel** (:meth:`JobManager.cancel`) resolves queued jobs
  immediately; running jobs carry a cancel flag the progress hook
  checks, so the run unwinds (:class:`~repro.errors.JobCancelled`) at
  the next event — cancellation latency is bounded by one greedy step.
  A cancelled or failed run releases its scheduler lane and drops the
  lane's engine pool (a partially-built pool must never look warm).

Results are byte-identical to the synchronous endpoints: a job executes
through exactly the same :meth:`ServiceContext.run_tune`/``run_sweep``
path, on the same lane, with the same per-run isolation.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time

from repro.errors import BackpressureError, JobCancelled, JobError

JOB_KINDS = ("tune", "sweep")
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


class JobRecord:
    """One submitted job: identity, state machine, ordered event log,
    and (on completion) the response payload or error text."""

    def __init__(self, job_id: str, kind: str, context: str,
                 payload: dict) -> None:
        self.id = job_id
        self.kind = kind
        self.context = context
        self.payload = dict(payload)
        self.state = "queued"
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self.events: list[dict] = []
        self.result: dict | None = None
        self.error: str | None = None
        #: cross-thread cancel flag (the lane thread's progress hook
        #: polls it; the loop side sets it).
        self.cancel = threading.Event()
        #: pulsed (loop-side) on every event append / state change so
        #: streamers wake without polling.
        self.changed = asyncio.Event()

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def snapshot(self, include_result: bool = True) -> dict:
        """The JSON wire form of this job right now."""
        out = {
            "id": self.id,
            "kind": self.kind,
            "context": self.context,
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "events": len(self.events),
            "payload": dict(self.payload),
        }
        if self.error is not None:
            out["error"] = self.error
        if include_result and self.result is not None:
            out["result"] = self.result
        return out


class JobManager:
    """Owns every job of one :class:`AdvisorService` instance.

    Lives on the service's event loop; lane threads only ever reach it
    through ``call_soon_threadsafe``.  History is bounded: terminal
    jobs beyond ``max_history`` are evicted oldest-first (ids of
    evicted jobs 404 afterwards — clients stream or poll results out
    before they scroll away).
    """

    def __init__(self, service, max_history: int = 256) -> None:
        self.service = service
        self.max_history = max_history
        self.jobs: dict[str, JobRecord] = {}
        self._order: list[str] = []
        self._counter = itertools.count(1)
        self._tasks: set[asyncio.Task] = set()
        #: lifecycle counters, per kind.
        self.submitted = {kind: 0 for kind in JOB_KINDS}
        self.finished = {state: 0 for state in TERMINAL_STATES}

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, kind: str, context: str, payload: dict) -> JobRecord:
        """Create a job and schedule it on its context's lane."""
        if kind not in JOB_KINDS:
            raise JobError(
                f"unknown job kind {kind!r}; one of {JOB_KINDS}"
            )
        if context not in self.service.contexts:
            raise JobError(
                f"unknown context {context!r}; registered: "
                f"{sorted(self.service.contexts)}"
            )
        if not self.service.started or self.service._closing:
            raise JobError("service is not running")
        queued = sum(
            1 for record in self.jobs.values() if record.state == "queued"
        )
        if queued >= self.service.max_pending:
            raise BackpressureError(
                f"job queue full ({self.service.max_pending} queued); "
                "retry later"
            )
        record = JobRecord(
            f"job-{next(self._counter):06d}", kind, context, payload
        )
        self.jobs[record.id] = record
        self._order.append(record.id)
        self.submitted[kind] += 1
        self._append_event(record, {
            "event": "state", "state": "queued", "job": record.id,
        })
        task = asyncio.get_running_loop().create_task(
            self._run_job(record)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        self._evict()
        return record

    async def _run_job(self, record: JobRecord) -> None:
        lane = self.service.scheduler.lane_for(record.context)
        loop = asyncio.get_running_loop()

        def work():
            # Runs on the lane thread, strictly after every earlier
            # same-lane submission.  A cancel that lands while the job
            # waits its turn resolves here, before any tuning work —
            # the lane is released untouched.
            if record.cancel.is_set():
                raise JobCancelled("cancelled while queued")
            loop.call_soon_threadsafe(self._mark_running, record)

            def progress(event: dict) -> None:
                if record.cancel.is_set():
                    raise JobCancelled("cancel requested")
                loop.call_soon_threadsafe(
                    self._append_event, record, dict(event)
                )

            return self.service._execute(
                record.kind, record.context, dict(record.payload),
                lane=lane, progress=progress,
            )

        try:
            result = await loop.run_in_executor(lane.executor, work)
        except JobCancelled as exc:
            self._finish(record, "cancelled", error=str(exc))
        except asyncio.CancelledError:
            # Service loop torn down mid-await: the lane thread still
            # finishes (or cancels via the flag stop() sets); the
            # record must not stay non-terminal forever.
            record.cancel.set()
            self._finish(record, "cancelled", error="service stopped")
            raise
        except Exception as exc:  # noqa: BLE001 - recorded on the job
            self._finish(record, "failed", error=str(exc))
        else:
            self._finish(record, "done", result=result)

    # ------------------------------------------------------------------
    # loop-side state transitions
    # ------------------------------------------------------------------
    def _mark_running(self, record: JobRecord) -> None:
        if record.terminal:  # cancelled in the submission race window
            return
        record.state = "running"
        record.started = time.time()
        self._append_event(record, {
            "event": "state", "state": "running", "job": record.id,
        })

    def _finish(self, record: JobRecord, state: str,
                result: dict | None = None,
                error: str | None = None) -> None:
        if record.terminal:
            return
        record.state = state
        record.finished = time.time()
        record.result = result
        record.error = error
        self.finished[state] += 1
        event = {"event": "state", "state": state, "job": record.id}
        if error is not None:
            event["error"] = error
        self._append_event(record, event)

    def _append_event(self, record: JobRecord, event: dict) -> None:
        event["seq"] = len(record.events) + 1
        record.events.append(event)
        record.changed.set()

    def _evict(self) -> None:
        while len(self._order) > self.max_history:
            for job_id in list(self._order):
                record = self.jobs.get(job_id)
                if record is None or record.terminal:
                    self._order.remove(job_id)
                    self.jobs.pop(job_id, None)
                    break
            else:
                return  # everything live — never evict a running job

    # ------------------------------------------------------------------
    # lookup / streaming / cancel
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> JobRecord:
        record = self.jobs.get(job_id)
        if record is None:
            raise JobError(f"no such job {job_id!r}")
        return record

    def list_jobs(self) -> list[dict]:
        return [
            self.jobs[job_id].snapshot(include_result=False)
            for job_id in self._order if job_id in self.jobs
        ]

    def events_after(self, job_id: str, after: int = 0) -> list[dict]:
        """Every recorded event with ``seq > after`` (poll form).
        ``seq`` is gapless and 1-based, so this is a slice."""
        record = self.get(job_id)
        return record.events[max(after, 0):]

    async def stream(self, job_id: str, after: int = 0):
        """Async-iterate a job's events live, ending once the job is
        terminal and its log fully drained."""
        record = self.get(job_id)
        after = max(after, 0)
        while True:
            # seq == list index + 1 (gapless), so the unseen tail is a
            # slice — no rescan of the whole log per wake-up.
            for event in record.events[after:]:
                after = event["seq"]
                yield event
            if record.terminal and record.events \
                    and record.events[-1]["seq"] <= after:
                return
            record.changed.clear()
            # Re-check before parking: an event appended between the
            # snapshot above and this point re-set the flag.
            if record.events and record.events[-1]["seq"] > after:
                continue
            await record.changed.wait()

    def cancel(self, job_id: str) -> JobRecord:
        """Request cancellation: queued jobs resolve before execution,
        running jobs unwind at their next progress event, terminal jobs
        are left untouched (cancel is idempotent)."""
        record = self.get(job_id)
        if record.terminal:
            return record
        record.cancel.set()
        if record.state == "queued":
            # Resolve eagerly so polls see it now; the lane-side check
            # keeps the skipped execution honest.
            self._finish(record, "cancelled",
                         error="cancelled while queued")
        return record

    def cancel_all(self) -> None:
        """Flag every non-terminal job for cancellation (service
        shutdown): running jobs unwind at their next progress event."""
        for record in self.jobs.values():
            if not record.terminal:
                record.cancel.set()
                if record.state == "queued":
                    self._finish(record, "cancelled",
                                 error="service stopped")

    async def drain(self) -> None:
        """Wait until every submitted job's task has completed."""
        while self._tasks:
            await asyncio.gather(*list(self._tasks),
                                 return_exceptions=True)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        states = {state: 0 for state in JOB_STATES}
        for record in self.jobs.values():
            states[record.state] += 1
        return {
            "submitted": dict(self.submitted),
            "finished": dict(self.finished),
            "states": states,
            "retained": len(self.jobs),
        }
