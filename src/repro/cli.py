"""Command-line interface: ``python -m repro
tune|sweep|estimate|serve|jobs|experiments|validate|columnstore``.

Examples::

    python -m repro tune --dataset tpch --scale 0.2 --budget 0.15 \
        --variant dtac-both --select-weight 10
    python -m repro sweep --dataset sales --budgets 0.1,0.2,0.3 \
        --seeds 1,2 --workers 4 --cache-dir .repro-cache
    python -m repro estimate --dataset tpch --scale 0.2
    python -m repro serve --dataset sales --scale 0.1 --port 8765 \
        --cache-dir .repro-cache
    python -m repro jobs submit --context sales --budget 0.15 --follow
    python -m repro jobs events job-000001
    python -m repro jobs cancel job-000001
    python -m repro experiments --only table4_graph_quality
    python -m repro validate --dataset tpch --budget 0.3
    python -m repro columnstore --dataset tpch --budget 0.25
"""

from __future__ import annotations

import argparse
import importlib
import sys

from repro.advisor import algorithms, variant_names, variants
from repro.api import Session
from repro.datasets import (
    sales_database,
    sales_workload,
    tpch_database,
    tpch_workload,
)


def _make_dataset(args):
    if args.dataset == "tpch":
        db = tpch_database(scale=args.scale, z=args.zipf)
        wl = tpch_workload(db, select_weight=args.select_weight,
                           insert_weight=args.insert_weight)
    elif args.dataset == "sales":
        db = sales_database(scale=args.scale)
        wl = sales_workload(db, select_weight=args.select_weight,
                            insert_weight=args.insert_weight)
    else:
        raise SystemExit(f"unknown dataset {args.dataset!r}")
    return db, wl


def _make_session(args, db, wl) -> Session:
    """One facade session per CLI invocation, owning the option
    defaults the subcommands share."""
    return Session(
        db, wl,
        variant=args.variant,
        cache_dir=args.cache_dir,
        algorithm=args.algorithm,
        enable_partial=getattr(args, "all_features", False),
        enable_mv=getattr(args, "all_features", False),
        workers=args.workers,
        delta_costing=not args.full_recost,
        kernel=args.kernel,
    )


def cmd_tune(args) -> int:
    db, wl = _make_dataset(args)
    budget = db.total_data_bytes() * args.budget
    result = _make_session(args, db, wl).tune(budget_bytes=budget)
    print(f"database {db.name}: {db.total_data_bytes() / 1024:.0f} KiB raw")
    print(f"variant {args.variant}, algorithm {args.algorithm}, "
          f"budget {budget / 1024:.0f} KiB")
    print(f"improvement {result.improvement_pct:.1f}% "
          f"({result.base_cost:.0f} -> {result.final_cost:.0f}), "
          f"consumed {result.consumed_bytes / 1024:.0f} KiB, "
          f"{result.elapsed_seconds:.1f}s")
    ks = result.kernel_stats
    if ks:
        print(f"costing kernel: {ks.get('backend', '?')} backend, "
              f"{ks.get('lanes_total', 0)} lanes "
              f"({ks.get('batches_numpy', 0)} array batches, "
              f"{ks.get('batches_scalar', 0)} scalar)")
    ds = result.delta_stats
    if ds:
        # .get guards: full-recost runs and older stats payloads carry
        # no pruning counters, and the summary line must never crash
        # the CLI over a missing key.
        pruned = (ds.get("pruned_zero_delta", 0)
                  + ds.get("pruned_bound", 0))
        print(f"delta costing: {ds.get('reused_terms', 0)} terms reused, "
              f"{ds.get('patched_terms', 0)} plan-patched, "
              f"{ds.get('full_recosts', 0)} full recosts, "
              f"{pruned} candidates pruned")
    else:
        print(f"full recost: {result.optimizer_calls} optimizer calls "
              "(delta costing off)")
    for ix in sorted(result.configuration, key=lambda i: i.display_name()):
        print(f"  {ix.display_name():58s} "
              f"{result.sizes[ix] / 1024:8.0f} KiB")
    return 0


def cmd_sweep(args) -> int:
    db, wl = _make_dataset(args)
    total = db.total_data_bytes()
    budgets = [total * fraction for fraction in args.budgets]
    session = Session(
        db, wl,
        variant=args.variant,
        cache_dir=args.cache_dir,
        algorithm=args.algorithm,
        enable_partial=args.all_features,
        enable_mv=args.all_features,
        delta_costing=not args.full_recost,
        kernel=args.kernel,
    )
    result = session.sweep(budgets, seeds=args.seeds, workers=args.workers)
    print(f"database {db.name}: {total / 1024:.0f} KiB raw, "
          f"variant {args.variant}, {len(result.runs)} runs "
          f"({len(args.budgets)} budgets x "
          f"{len(args.seeds) if args.seeds else 1} seeds), "
          f"workers={result.workers}, "
          f"{result.elapsed_seconds:.1f}s total")
    print(f"{'seed':>10s} {'budget%':>8s} {'improve%':>9s} "
          f"{'consumed KiB':>13s} {'run s':>7s}")
    for run in result.runs:
        outcome = run.result
        print(f"{run.seed:>10d} "
              f"{100.0 * run.budget_bytes / total:>8.1f} "
              f"{outcome.improvement_pct:>9.1f} "
              f"{outcome.consumed_bytes / 1024:>13.0f} "
              f"{outcome.elapsed_seconds:>7.1f}")
    if result.estimation_cache_stats:
        est, cost = result.estimation_cache_stats, result.cost_cache_stats
        print(f"size-estimate cache: {est['hit_rate']:.1%} hit rate "
              f"({est['hits']}/{est['hits'] + est['misses']} lookups)")
        print(f"what-if cost cache:  {cost['hit_rate']:.1%} hit rate "
              f"({cost['hits']}/{cost['hits'] + cost['misses']} lookups)")
    if result.engine_stats.get("parallel_maps"):
        print(f"engine: {result.engine_stats['tasks_dispatched']} runs "
              f"sharded over {result.workers} workers")
    return 0


def _drift_spec(args):
    from repro.workload.drift import DriftSpec

    return DriftSpec(
        seed=args.drift_seed,
        hot_fraction=args.hot_fraction,
        hot_weight=args.hot_weight,
        cold_weight=args.cold_weight,
        arrival_jitter=args.arrival_jitter,
        update_weights=tuple(args.update_weights),
    )


def _specs_from_result(path: str) -> list:
    """Index specs from a saved result JSON: either a ``/v1`` response
    (``result.indexes``) or a job snapshot (``result.result.indexes``)."""
    import json

    try:
        with open(path, encoding="utf-8") as handle:
            raw = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"--from-result {path}: {exc}") from None
    body = raw
    for _ in range(2):
        inner = body.get("result") if isinstance(body, dict) else None
        if isinstance(inner, dict):
            body = inner
    specs = body.get("indexes") if isinstance(body, dict) else None
    if not isinstance(specs, list) or \
            not all(isinstance(s, dict) for s in specs):
        raise SystemExit(
            f"--from-result {path}: no 'result.indexes' spec list found"
        )
    return specs


def cmd_retune(args) -> int:
    """Continuous tuning demo: cold-tune drift phase 0, then retune
    incrementally through the remaining phases, printing each phase's
    configuration diff."""
    from repro.workload.drift import DriftingWorkload

    db, wl = _make_dataset(args)
    budget = db.total_data_bytes() * args.budget
    drift = DriftingWorkload(wl, _drift_spec(args))
    session = _make_session(args, db, drift.phase(0))
    print(f"database {db.name}: {db.total_data_bytes() / 1024:.0f} KiB "
          f"raw, budget {budget / 1024:.0f} KiB, "
          f"{args.phases} drift phases (seed {args.drift_seed})")
    cold = session.tune(budget_bytes=budget)
    print(f"phase 0: tuned cold, improvement "
          f"{cold.improvement_pct:.1f}%, "
          f"{len(list(cold.configuration))} structures, "
          f"{cold.elapsed_seconds:.1f}s")
    for phase in range(1, args.phases):
        rt = session.retune(budget_bytes=budget,
                            workload=drift.phase(phase))
        print(f"phase {phase}: retuned gen={rt.generation} "
              f"improvement {rt.result.improvement_pct:.1f}% "
              f"dropped={len(rt.dropped)} added={len(rt.added)} "
              f"kept={len(rt.kept)} "
              f"{rt.result.elapsed_seconds:.1f}s")
        for ix in rt.dropped:
            print(f"  - {ix.display_name()}")
        for ix in rt.added:
            print(f"  + {ix.display_name()}")
    return 0


def cmd_estimate(args) -> int:
    from repro.compression import CompressionMethod
    from repro.parallel import EstimationCache, ParallelEngine
    from repro.physical import IndexDef
    from repro.sizeest import SizeEstimator

    db, wl = _make_dataset(args)
    engine = ParallelEngine(args.workers)
    estimator = SizeEstimator(
        db, e=args.error, q=args.confidence,
        cache=EstimationCache(args.cache_dir) if args.cache_dir else None,
        engine=engine,
    )
    fact = "lineitem" if args.dataset == "tpch" else "sales"
    table = db.table(fact)
    keys = list(table.column_names[:4])
    targets = [
        IndexDef(fact, (k,), method=m)
        for k in keys
        for m in (CompressionMethod.ROW, CompressionMethod.PAGE)
    ]
    try:
        estimates = estimator.estimate_many(targets)
    finally:
        # We own this engine: release its kept-alive worker pool.
        engine.shutdown()
    for ix, est in estimates.items():
        print(f"{ix.display_name():55s} {est.source:9s} "
              f"{est.est_bytes / 1024:8.0f} KiB  cost={est.cost:.0f}")
    return 0


def cmd_algorithms(args) -> int:
    """Print the selection-algorithm registry (and the variant
    registry it composes with)."""
    print("selection algorithms (--algorithm):")
    for name, cls in sorted(algorithms.registered().items()):
        marker = "*" if name == algorithms.DEFAULT_ALGORITHM else " "
        print(f"  {marker} {name:18s} {cls.summary}")
        if args.verbose:
            for opt, schema in sorted(cls.options_schema().items()):
                default = schema.get("default")
                suffix = f" (default {default!r})" if default is not None \
                    else ""
                print(f"        {opt:22s} {schema.get('type', '?'):8s} "
                      f"{schema.get('description', '')}{suffix}")
    print()
    print("advisor variants (--variant):")
    for spec in variants():
        marker = "*" if spec.name == "dtac-both" else " "
        print(f"  {marker} {spec.name:18s} {spec.doc}")
    print()
    print("* = default; variants pick what the advisor considers, "
          "algorithms pick how the pool is searched.")
    return 0


def cmd_experiments(args) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    names = [args.only] if args.only else list(ALL_EXPERIMENTS)
    for name in names:
        module = importlib.import_module(f"repro.experiments.{name}")
        module.run(scale=args.scale).print()
        print()
    return 0


def cmd_validate(args) -> int:
    from repro.engine import validate_recommendation
    from repro.sizeest import SizeEstimator
    from repro.stats import DatabaseStats

    db, wl = _make_dataset(args)
    stats = DatabaseStats(db)
    estimator = SizeEstimator(db, stats=stats)
    budget = db.total_data_bytes() * args.budget
    session = Session(
        db, wl,
        variant=args.variant,
        cache_dir=args.cache_dir,
        stats=stats,
        workers=args.workers,
        delta_costing=not args.full_recost,
        kernel=args.kernel,
    )
    result = session.tune(budget_bytes=budget)
    report = validate_recommendation(
        result, db, wl, stats=stats, estimator=estimator
    )
    print(f"estimated improvement: {report.estimated_improvement:8.1%}")
    print(f"deployed improvement:  {report.true_size_improvement:8.1%}")
    print(f"budget respected:      {report.budget_holds}")
    print(f"worst size estimate:   {report.max_abs_size_error:8.1%} off")
    for check in sorted(report.size_checks,
                        key=lambda c: -abs(c.ratio_error)):
        print(f"  {check.ratio_error:+7.1%}  "
              f"est {check.estimated / 1024:8.0f} KiB  "
              f"true {check.measured / 1024:8.0f} KiB  "
              f"{check.index.display_name()}")
    return 0 if report.recommendation_holds else 1


def cmd_serve(args) -> int:
    import asyncio
    import os

    from repro.service import AdvisorService, JobWorker, serve

    if args.worker and args.cache_dir is None:
        print("serve --worker needs --cache-dir (the shared journal)")
        return 2
    if args.dispatch_only and args.cache_dir is None:
        print("serve --dispatch-only needs --cache-dir (the journal "
              "workers drain)")
        return 2
    tenant_weights = {}
    for spec in args.tenant_weight or ():
        name, _, weight = spec.partition("=")
        try:
            tenant_weights[name] = int(weight)
        except ValueError:
            print(f"bad --tenant-weight {spec!r}; expected NAME=INT")
            return 2
    writer = args.worker_id or (
        f"worker-{os.getpid()}" if args.worker else "coordinator"
    )
    service = AdvisorService(
        workers=args.workers,
        cache_dir=args.cache_dir,
        max_pending=args.max_pending,
        max_context_workers=args.max_context_workers,
        tenant_quota=args.tenant_quota,
        tenant_weights=tenant_weights,
        execute_jobs=not args.dispatch_only,
        journal_writer=writer,
        poll_interval=args.poll_interval,
        journal_max_segment_bytes=args.journal_max_segment_bytes
        or None,
        fault_plan=args.fault_plan,
    )
    names = (
        ("sales", "tpch") if args.dataset == "both" else (args.dataset,)
    )
    for name in names:
        if name == "tpch":
            db = tpch_database(scale=args.scale, z=args.zipf)
            wl = tpch_workload(db, select_weight=args.select_weight,
                               insert_weight=args.insert_weight)
        else:
            db = sales_database(scale=args.scale)
            wl = sales_workload(db, select_weight=args.select_weight,
                                insert_weight=args.insert_weight)
        service.register(name, db, wl)
    if args.worker:
        worker = JobWorker(service, poll_interval=args.poll_interval)
        print(f"advisor worker {writer}: draining "
              f"{service.journal.root}", flush=True)
        try:
            done = worker.run_forever(
                max_jobs=args.max_jobs or None,
                idle_timeout=args.idle_timeout or None,
            )
        except KeyboardInterrupt:
            done = sum(worker.executed.values())
            print(f"advisor worker {writer}: interrupted", flush=True)
        print(f"advisor worker {writer}: executed {done} job(s)",
              flush=True)
        service.save_caches()
        return 0
    try:
        asyncio.run(serve(service, host=args.host, port=args.port))
    except KeyboardInterrupt:
        print("advisor service: interrupted, shutting down", flush=True)
    return 0


def cmd_jobs(args) -> int:
    """Drive the ``/v1/jobs`` surface of a running service."""
    import asyncio
    import json as _json

    from repro.service import AdvisorClient, ServiceHTTPError

    def show(snapshot: dict) -> None:
        line = (f"{snapshot['id']}  {snapshot['kind']:5s} "
                f"{snapshot['context']:12s} {snapshot['state']:9s} "
                f"{snapshot['events']:4d} events")
        if snapshot.get("error"):
            line += f"  ({snapshot['error']})"
        print(line)

    async def follow(client, job_id) -> dict:
        async for event in client.stream_events(job_id,
                                                after=args.after):
            if event["event"] == "greedy_step":
                seq = event.get("step_seq", event["seq"])
                print(f"  step {seq:3d} [{event['kind']}] "
                      f"{event['step']}")
            elif event["event"] == "best_so_far":
                print(f"  best #{event['improvement_seq']:<3d} "
                      f"cost {event['cost']:.1f}  "
                      f"{len(event['configuration'])} structures")
            elif event["event"] == "state":
                print(f"  state -> {event['state']}")
            elif event["event"] == "phase":
                print(f"  phase -> {event['phase']}")
            elif event["event"] in ("dropped", "added"):
                names = ", ".join(event.get("indexes", ()))
                print(f"  {event['event']}: {names}")
            elif event["event"] == "config_changed":
                print(f"  config_changed={event['changed']} "
                      f"gen={event['generation']}")
            elif args.verbose:
                print(f"  {_json.dumps(event)}")
        return await client.job(job_id)

    async def main() -> int:
        async with AdvisorClient(args.host, args.port) as client:
            if args.action == "list":
                listing = await client.jobs(tenant=args.tenant)
                for snapshot in listing["jobs"]:
                    show(snapshot)
                return 0
            if args.action == "submit":
                payload = dict(budget_fraction=args.budget,
                               variant=args.variant)
                if args.kind == "sweep":
                    payload = dict(budget_fractions=args.budgets,
                                   variant=args.variant)
                if args.kind == "retune" and args.drift_phase is not None:
                    payload["drift"] = {"phase": args.drift_phase,
                                        **_drift_spec(args).to_dict()}
                if args.from_result is not None:
                    payload["from_config"] = \
                        _specs_from_result(args.from_result)
                if args.algorithm is not None:
                    payload["options"] = {"algorithm": args.algorithm}
                if args.seed is not None:
                    payload["seed"] = args.seed
                job = await client.submit_job(
                    args.context, kind=args.kind,
                    tenant=args.tenant or "default",
                    priority=args.priority,
                    deadline_s=args.deadline, retries=args.retries,
                    retry_backoff=args.retry_backoff, **payload
                )
                show(job)
                if not args.follow:
                    return 0
                final = await follow(client, job["id"])
                show(final)
                if final["state"] == "done" and args.kind == "tune":
                    result = final["result"]["result"]
                    print(f"improvement "
                          f"{100 * result['improvement']:.1f}% "
                          f"({result['base_cost']:.0f} -> "
                          f"{result['final_cost']:.0f})")
                if final["state"] == "done" and args.kind == "retune":
                    result = final["result"]["result"]
                    rt = final["result"]["retune"]
                    print(f"retuned gen={rt['generation']} "
                          f"improvement "
                          f"{100 * result['improvement']:.1f}% "
                          f"dropped={len(rt['dropped'])} "
                          f"added={len(rt['added'])} "
                          f"kept={len(rt['kept'])}")
                return 0 if final["state"] == "done" else 1
            # status/events/cancel address one job.
            if not args.id:
                raise SystemExit(f"jobs {args.action} needs a job id")
            if args.action == "status":
                show(await client.job(args.id))
                return 0
            if args.action == "cancel":
                show(await client.cancel_job(args.id))
                return 0
            if args.action == "events":
                final = await follow(client, args.id)
                show(final)
                return 0
            raise SystemExit(f"unknown jobs action {args.action!r}")

    try:
        return asyncio.run(main())
    except ServiceHTTPError as exc:
        print(f"jobs {args.action}: {exc}")
        return 1


def cmd_columnstore(args) -> int:
    from repro.columnstore import tune_columnstore

    db, wl = _make_dataset(args)
    budget = db.total_data_bytes() * args.budget
    result = tune_columnstore(
        db, wl, budget, compression_aware=not args.blind
    )
    mode = "blind" if args.blind else "compression-aware"
    print(f"column-store advisor ({mode}): "
          f"improvement {result.improvement_pct:.1f}%, "
          f"consumed {result.consumed_bytes / 1024:.0f} of "
          f"{budget / 1024:.0f} KiB, "
          f"{result.candidate_count} candidates, "
          f"{result.elapsed_seconds:.1f}s")
    for projection in result.projections:
        size = result.sizes[projection]
        print(f"  {size.bytes / 1024:8.0f} KiB  {projection.name}")
    return 0


def _csv_list(cast, label):
    """argparse type for a non-empty comma-separated list of ``cast``."""
    def parse(value: str):
        try:
            items = [cast(part) for part in value.split(",") if part]
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"not a comma-separated {cast.__name__} list: {value!r}"
            )
        if not items:
            raise argparse.ArgumentTypeError(f"need at least one {label}")
        return items
    return parse


_fraction_list = _csv_list(float, "budget")
_seed_list = _csv_list(int, "seed")


def _workers_arg(value: str) -> int:
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {value!r}")
    if workers < 0:
        raise argparse.ArgumentTypeError("workers must be >= 0")
    return workers


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compression-aware physical database design "
                    "(VLDB 2011 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_dataset_args(p):
        p.add_argument("--dataset", choices=("tpch", "sales"),
                       default="tpch")
        p.add_argument("--scale", type=float, default=0.2)
        p.add_argument("--zipf", type=float, default=0.0)
        p.add_argument("--select-weight", type=float, default=5.0)
        p.add_argument("--insert-weight", type=float, default=1.0)
        p.add_argument("--workers", type=_workers_arg, default=1,
                       help="process-pool size for candidate evaluation "
                            "(0 = one per CPU, 1 = sequential)")
        p.add_argument("--cache-dir", default=None,
                       help="directory for the persistent size-estimate "
                            "cache (shared across runs)")
        p.add_argument("--full-recost", action="store_true",
                       help="disable delta-aware workload costing and "
                            "re-cost the whole workload per candidate "
                            "(identical recommendations, slower — the "
                            "A/B baseline for the incremental bench)")
        p.add_argument("--kernel", choices=("auto", "numpy", "python"),
                       default="auto",
                       help="costing-kernel backend for batch "
                            "access-path evaluation (auto = numpy when "
                            "importable; backends are float-identical, "
                            "so recommendations never change)")

    p_tune = sub.add_parser("tune", help="run the tuning advisor")
    add_dataset_args(p_tune)
    p_tune.add_argument("--budget", type=float, default=0.2,
                        help="storage budget as a fraction of raw data")
    p_tune.add_argument("--variant", choices=variant_names(),
                        default="dtac-both")
    p_tune.add_argument("--algorithm", choices=algorithms.names(),
                        default=algorithms.DEFAULT_ALGORITHM,
                        help="selection algorithm over the candidate "
                             "pool (see 'repro algorithms')")
    p_tune.add_argument("--all-features", action="store_true",
                        help="enable partial indexes and MVs")
    p_tune.set_defaults(fn=cmd_tune)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a whole budget sweep / seed ablation as one sharded "
             "job (one engine session, persistent size + cost caches)",
    )
    add_dataset_args(p_sweep)
    p_sweep.add_argument("--budgets", type=_fraction_list,
                         default=[0.1, 0.2, 0.3],
                         help="comma-separated storage budgets as "
                              "fractions of raw data (one run each)")
    p_sweep.add_argument("--seeds", type=_seed_list, default=None,
                         help="comma-separated sampling seeds to ablate "
                              "over (default: the standard seed)")
    p_sweep.add_argument("--variant", choices=variant_names(),
                         default="dtac-both")
    p_sweep.add_argument("--algorithm", choices=algorithms.names(),
                         default=algorithms.DEFAULT_ALGORITHM,
                         help="selection algorithm for every unit")
    p_sweep.add_argument("--all-features", action="store_true",
                         help="enable partial indexes and MVs")
    p_sweep.set_defaults(fn=cmd_sweep)

    def add_drift_args(p):
        p.add_argument("--drift-seed", type=int, default=0,
                       help="base seed of the deterministic drift "
                            "schedule")
        p.add_argument("--hot-fraction", type=float, default=0.3,
                       help="share of the SELECTs boosted per phase")
        p.add_argument("--hot-weight", type=float, default=8.0)
        p.add_argument("--cold-weight", type=float, default=0.05)
        p.add_argument("--arrival-jitter", type=float, default=0.25)
        p.add_argument("--update-weights", type=_fraction_list,
                       default=[1.0, 4.0],
                       help="per-phase update/bulk weights, cycled")

    p_re = sub.add_parser(
        "retune",
        help="continuous tuning under workload drift: cold-tune phase "
             "0, then incremental retunes (drop decayed structures, "
             "greedy re-fill) through the remaining phases",
    )
    add_dataset_args(p_re)
    p_re.add_argument("--budget", type=float, default=0.2,
                      help="storage budget as a fraction of raw data")
    p_re.add_argument("--variant", choices=variant_names(),
                      default="dtac-both")
    p_re.add_argument("--algorithm", choices=algorithms.names(),
                      default=algorithms.DEFAULT_ALGORITHM)
    p_re.add_argument("--phases", type=int, default=3,
                      help="number of drift phases to tune through")
    add_drift_args(p_re)
    p_re.set_defaults(fn=cmd_retune, all_features=False)

    p_alg = sub.add_parser(
        "algorithms",
        help="print the selection-algorithm and variant registries",
    )
    p_alg.add_argument("--verbose", action="store_true",
                       help="include each algorithm's option schema")
    p_alg.set_defaults(fn=cmd_algorithms)

    p_est = sub.add_parser("estimate",
                           help="demo the size-estimation framework")
    add_dataset_args(p_est)
    p_est.add_argument("--error", type=float, default=0.5)
    p_est.add_argument("--confidence", type=float, default=0.9)
    p_est.set_defaults(fn=cmd_estimate)

    p_exp = sub.add_parser("experiments", help="run paper experiments")
    p_exp.add_argument("--only", default=None)
    p_exp.add_argument("--scale", type=float, default=0.2)
    p_exp.set_defaults(fn=cmd_experiments)

    p_val = sub.add_parser(
        "validate",
        help="tune, then re-check the recommendation against "
             "physically built structures",
    )
    add_dataset_args(p_val)
    p_val.add_argument("--budget", type=float, default=0.2)
    p_val.add_argument("--variant", choices=variant_names(),
                       default="dtac-both")
    p_val.set_defaults(fn=cmd_validate)

    p_srv = sub.add_parser(
        "serve",
        help="run the async tuning service (JSON over HTTP): concurrent "
             "tune/sweep/estimate/cost requests with in-flight "
             "coalescing, one shared engine pool and persistent caches",
    )
    p_srv.add_argument("--dataset", choices=("tpch", "sales", "both"),
                       default="sales",
                       help="context(s) to register at boot")
    p_srv.add_argument("--scale", type=float, default=0.2)
    p_srv.add_argument("--zipf", type=float, default=0.0)
    p_srv.add_argument("--select-weight", type=float, default=5.0)
    p_srv.add_argument("--insert-weight", type=float, default=1.0)
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8765,
                       help="TCP port (0 = ephemeral, printed at boot)")
    p_srv.add_argument("--workers", type=_workers_arg, default=1,
                       help="shared engine pool size every advisor run "
                            "borrows (0 = one per CPU, 1 = sequential)")
    p_srv.add_argument("--cache-dir", default=None,
                       help="directory for the persistent size-estimate "
                            "and what-if cost caches")
    p_srv.add_argument("--max-pending", type=int, default=64,
                       help="request-queue bound; beyond it the HTTP "
                            "layer answers 503 (backpressure)")
    p_srv.add_argument("--max-context-workers", type=int, default=4,
                       help="scheduler lane cap: at most this many "
                            "contexts tune concurrently (each context "
                            "always serializes on its own lane)")
    p_srv.add_argument("--tenant-quota", type=int, default=None,
                       help="per-tenant cap on active jobs; beyond it "
                            "submissions answer 429 (per-tenant "
                            "backpressure)")
    p_srv.add_argument("--tenant-weight", action="append", default=[],
                       metavar="NAME=W",
                       help="weighted round-robin weight for one "
                            "tenant inside each priority lane "
                            "(repeatable; default weight 1)")
    p_srv.add_argument("--worker", action="store_true",
                       help="run as a job worker instead of an HTTP "
                            "server: claim queued jobs from the shared "
                            "--cache-dir journal via leases and "
                            "execute them")
    p_srv.add_argument("--worker-id", default=None,
                       help="journal segment/writer name (default: "
                            "worker-<pid> with --worker, else "
                            "'coordinator')")
    p_srv.add_argument("--dispatch-only", action="store_true",
                       help="coordinator accepts and journals jobs but "
                            "leaves execution to --worker processes")
    p_srv.add_argument("--poll-interval", type=float, default=0.25,
                       help="journal tail cadence in seconds "
                            "(coordinator folding worker progress; "
                            "worker claim scans)")
    p_srv.add_argument("--max-jobs", type=int, default=0,
                       help="worker mode: exit after this many "
                            "executed jobs (0 = unlimited)")
    p_srv.add_argument("--idle-timeout", type=float, default=0.0,
                       help="worker mode: exit after this many "
                            "consecutive idle seconds (0 = never)")
    p_srv.add_argument("--journal-max-segment-bytes", type=int,
                       default=0,
                       help="rotate this process's journal segment "
                            "once it grows past this many bytes "
                            "(0 = never rotate)")
    p_srv.add_argument("--fault-plan", default=None,
                       metavar="PLAN",
                       help="deterministic fault-injection plan, e.g. "
                            "'journal.append:enospc@3x2;"
                            "coster.batch:delay=0.1' (testing only; "
                            "REPRO_FAULTS env var works too)")
    p_srv.set_defaults(fn=cmd_serve)

    p_jobs = sub.add_parser(
        "jobs",
        help="drive the /v1/jobs surface of a running service: submit "
             "tune/sweep jobs, poll, stream progress, cancel",
    )
    p_jobs.add_argument("action",
                        choices=("submit", "status", "events", "cancel",
                                 "list"))
    p_jobs.add_argument("id", nargs="?", default=None,
                        help="job id (status/events/cancel)")
    p_jobs.add_argument("--host", default="127.0.0.1")
    p_jobs.add_argument("--port", type=int, default=8765)
    p_jobs.add_argument("--context", default="sales")
    p_jobs.add_argument("--kind", choices=("tune", "sweep", "retune"),
                        default="tune")
    p_jobs.add_argument("--budget", type=float, default=0.15,
                        help="tune-job storage budget (fraction of raw)")
    p_jobs.add_argument("--budgets", type=_fraction_list,
                        default=[0.1, 0.2, 0.3],
                        help="sweep-job budget fractions")
    p_jobs.add_argument("--variant", choices=variant_names(),
                        default="dtac-both")
    p_jobs.add_argument("--algorithm", choices=algorithms.names(),
                        default=None,
                        help="selection algorithm for the submitted "
                             "job (server default when omitted)")
    p_jobs.add_argument("--seed", type=int, default=None)
    p_jobs.add_argument("--tenant", default=None,
                        help="tenant tag for fairness/quota accounting "
                             "(submit default: 'default'); with list, "
                             "show only this tenant's jobs")
    p_jobs.add_argument("--priority",
                        choices=("high", "normal", "low"),
                        default="normal",
                        help="priority lane for the submitted job")
    p_jobs.add_argument("--deadline", type=float, default=None,
                        help="wall-clock deadline in seconds measured "
                             "from submission; past it the job fails "
                             "with timeout=true")
    p_jobs.add_argument("--retries", type=int, default=None,
                        help="re-run the job up to this many times "
                             "after transient failures")
    p_jobs.add_argument("--retry-backoff", type=float, default=None,
                        help="base seconds for jittered exponential "
                             "retry backoff (default 0.5)")
    p_jobs.add_argument("--from-result", default=None, metavar="PATH",
                        help="retune from the configuration in a saved "
                             "result/job-snapshot JSON instead of the "
                             "service's own last tune/retune")
    p_jobs.add_argument("--drift-phase", type=int, default=None,
                        help="retune against this drift phase of the "
                             "context's workload (omit to retune "
                             "against the registered workload as-is)")
    add_drift_args(p_jobs)
    p_jobs.add_argument("--after", type=int, default=0,
                        help="resume an event stream past this seq")
    p_jobs.add_argument("--follow", action="store_true",
                        help="after submit: stream events until the "
                             "job is terminal, then print the result")
    p_jobs.add_argument("--verbose", action="store_true",
                        help="print every raw event line")
    p_jobs.set_defaults(fn=cmd_jobs)

    p_cs = sub.add_parser(
        "columnstore",
        help="run the column-store projection advisor (Section 8)",
    )
    add_dataset_args(p_cs)
    p_cs.add_argument("--budget", type=float, default=0.25)
    p_cs.add_argument("--blind", action="store_true",
                      help="size candidates as fixed-width columns "
                           "(the decoupled strawman)")
    p_cs.set_defaults(fn=cmd_columnstore)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
