"""CS2 — compression-aware vs compression-blind projection design.

The column-store answer to the paper's central claim: a projection
advisor that integrates encoding effects into candidate selection beats
one that sizes and costs candidates as fixed-width columns and only
encodes the final recommendation (the decoupled strawman of Example 1,
transplanted to sort orders).
"""

from __future__ import annotations

from repro.columnstore.advisor import tune_columnstore
from repro.datasets import tpch_workload
from repro.experiments.common import (
    EXPERIMENT_SCALE,
    ExperimentResult,
    get_tpch,
)

BUDGET_FRACTIONS = (0.05, 0.15, 0.3, 0.6)


def run(scale: float = EXPERIMENT_SCALE) -> ExperimentResult:
    database = get_tpch(scale)
    workload = tpch_workload(
        database, select_weight=1.0, insert_weight=1.0
    )
    total = database.total_data_bytes()
    result = ExperimentResult(
        name="CS2: Column-store projection advisor, compression aware "
             "vs blind (improvement %)",
        headers=("Budget%", "aware", "blind"),
    )
    for fraction in BUDGET_FRACTIONS:
        budget = total * fraction
        aware = tune_columnstore(
            database, workload, budget, compression_aware=True
        )
        blind = tune_columnstore(
            database, workload, budget, compression_aware=False
        )
        result.rows.append((
            100.0 * fraction,
            aware.improvement_pct,
            blind.improvement_pct,
        ))
    result.notes.append(
        "paper shape carried to Section 8: integrating compression into "
        "the design search wins, most at tight budgets"
    )
    return result


def main() -> None:  # pragma: no cover
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
