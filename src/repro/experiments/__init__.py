"""Experiments reproducing every table and figure of the paper's
evaluation (see DESIGN.md for the index).

Each module exposes ``run(...) -> ExperimentResult`` and can be executed
directly: ``python -m repro.experiments.table1_mv_rowcount``.
"""

from repro.experiments.common import (
    EXPERIMENT_SCALE,
    ExperimentResult,
    clear_dataset_cache,
    get_sales,
    get_tpcds,
    get_tpch,
)

ALL_EXPERIMENTS = (
    "table1_mv_rowcount",
    "table2_error_fit",
    "table3_deduction_fit",
    "table4_graph_quality",
    "fig09_samplecf_error",
    "fig10_deduction_error",
    "fig11_runtime_breakdown",
    "fig12_tpch_select_ablation",
    "fig13_tpch_insert_ablation",
    "fig14_sales_select",
    "fig15_sales_insert",
    "fig16_tpch_select_full",
    "fig17_tpch_insert_full",
    "cs1_sort_order",
    "cs2_columnstore_advisor",
    "mg1_merging_ablation",
    "vl1_validation",
)

__all__ = [
    "ExperimentResult",
    "EXPERIMENT_SCALE",
    "ALL_EXPERIMENTS",
    "get_tpch",
    "get_sales",
    "get_tpcds",
    "clear_dataset_cache",
]
