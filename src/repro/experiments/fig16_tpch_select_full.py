"""Figure 16 — TPC-H SELECT-intensive with all features (partial indexes
and MV indexes enabled): DTAc vs DTA.

Paper shape: DTAc roughly doubles DTA's improvement at tight budgets
(e.g. 70% vs 40%); the gap closes as budgets grow.
"""

from __future__ import annotations

from repro.datasets import tpch_workload
from repro.experiments.budget_sweep import sweep
from repro.experiments.common import EXPERIMENT_SCALE, ExperimentResult, get_tpch

BUDGETS = (0.0, 0.05, 0.20, 0.50)
VARIANT_ORDER = ("dtac-both", "dta")


def run(scale: float = EXPERIMENT_SCALE) -> ExperimentResult:
    database = get_tpch(scale)
    workload = tpch_workload(
        database, select_weight=10.0, insert_weight=1.0
    )
    result = sweep(
        "Figure 16: TPC-H SELECT Intensive, All Features "
        "(improvement %)",
        database,
        workload,
        BUDGETS,
        VARIANT_ORDER,
        enable_partial=True,
        enable_mv=True,
    )
    result.notes.append(
        "paper shape: ~2x gap at tight budgets, closing as budget grows"
    )
    return result


def main() -> None:  # pragma: no cover
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
