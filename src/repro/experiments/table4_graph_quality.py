"""Table 4 — Quality (sampling cost) of the graph algorithms.

Compares the total size-estimation cost (uncompressed sample pages that
must be indexed) of three strategies over LINEITEM's compressed-index
targets at e=0.5, q=0.9 for a grid of sampling fractions:

* All — SampleCF on every target,
* Greedy — the paper's Section 5.2 algorithm,
* Optimal — the exact exponential recursion of Appendix D.

Paper shape: Greedy needs 2-6x less cost than All and stays within ~30%
(8% average) of Optimal; Greedy runs in under a second where Optimal
explodes.
"""

from __future__ import annotations

import time

from repro.compression.base import CompressionMethod
from repro.experiments.common import EXPERIMENT_SCALE, ExperimentResult, get_tpch
from repro.physical.index_def import IndexDef
from repro.sampling.sample_manager import SampleManager
from repro.sizeest.analytic import AnalyticSizer
from repro.sizeest.error_model import DEFAULT_ERROR_MODEL
from repro.sizeest.graph import EstimationGraph
from repro.sizeest.greedy import plan_all_sampled, plan_greedy
from repro.sizeest.optimal import plan_optimal
from repro.sizeest.plan import PlanEvaluator
from repro.stats.column_stats import DatabaseStats
from repro.storage.index_build import IndexKind

FRACTIONS = (0.01, 0.025, 0.05, 0.075, 0.10)

#: LINEITEM composite targets (<= 7 columns, as the paper restricted the
#: Optimal run): a mix of ROW and PAGE variants sharing column overlap so
#: deductions are actually available.
LINEITEM_TARGETS = [
    ("l_shipdate",),
    ("l_shipdate", "l_discount"),
    ("l_shipdate", "l_discount", "l_quantity"),
    ("l_shipmode", "l_shipdate"),
    ("l_shipmode", "l_shipdate", "l_quantity"),
    ("l_returnflag", "l_linestatus"),
    ("l_returnflag", "l_linestatus", "l_shipdate", "l_quantity"),
]


def make_targets(methods=(CompressionMethod.ROW, CompressionMethod.PAGE)):
    out = []
    for cols in LINEITEM_TARGETS:
        for method in methods:
            out.append(
                IndexDef("lineitem", cols, kind=IndexKind.SECONDARY,
                         method=method)
            )
    return out


def run(scale: float = EXPERIMENT_SCALE, e: float = 0.5,
        q: float = 0.9) -> ExperimentResult:
    database = get_tpch(scale)
    stats = DatabaseStats(database)
    manager = SampleManager(database, min_sample_rows=50)
    sizer = AnalyticSizer(database, stats, manager)
    targets = make_targets()

    result = ExperimentResult(
        name=f"Table 4: Quality (Cost) of Graph Algorithms. e={e}, q={q}",
        headers=("f", "All", "Greedy", "Optimal", "Greedy/Optimal"),
    )
    greedy_seconds = optimal_seconds = 0.0
    for fraction in FRACTIONS:
        costs = {}
        for name, algo in (
            ("All", plan_all_sampled),
            ("Greedy", plan_greedy),
            ("Optimal", plan_optimal),
        ):
            graph = EstimationGraph()
            for ix in targets:
                graph.add_index(ix, is_target=True)
            evaluator = PlanEvaluator(
                graph, DEFAULT_ERROR_MODEL, sizer, manager, fraction
            )
            start = time.perf_counter()
            plan = algo(evaluator, e, q)
            elapsed = time.perf_counter() - start
            if name == "Greedy":
                greedy_seconds += elapsed
            elif name == "Optimal":
                optimal_seconds += elapsed
            costs[name] = plan.total_cost if plan.feasible else float("inf")
        ratio = (
            costs["Greedy"] / costs["Optimal"]
            if costs["Optimal"] not in (0.0, float("inf"))
            else float("nan")
        )
        result.rows.append(
            (fraction, costs["All"], costs["Greedy"], costs["Optimal"], ratio)
        )
    result.notes.append(
        f"planning runtime: greedy {greedy_seconds:.2f}s, "
        f"optimal {optimal_seconds:.2f}s over {len(FRACTIONS)} fractions"
    )
    result.notes.append(
        "cost unit: uncompressed sample pages to index (Section 5.1)"
    )
    return result


def main() -> None:  # pragma: no cover
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
