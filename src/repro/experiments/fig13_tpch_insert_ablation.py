"""Figure 13 — TPC-H INSERT-intensive, simple indexes: the same
Skyline/Backtracking ablation under a heavily weighted bulk-load side.

Paper shape: improvements are smaller than the SELECT-intensive case
everywhere (index maintenance costs bound what any tool can win), and
DTAc(Both) still leads at tight budgets.
"""

from __future__ import annotations

from repro.datasets import tpch_workload
from repro.experiments.budget_sweep import sweep
from repro.experiments.common import EXPERIMENT_SCALE, ExperimentResult, get_tpch
from repro.experiments.fig12_tpch_select_ablation import BUDGETS, VARIANT_ORDER


def run(scale: float = EXPERIMENT_SCALE) -> ExperimentResult:
    database = get_tpch(scale)
    workload = tpch_workload(
        database, select_weight=1.0, insert_weight=10.0
    )
    result = sweep(
        "Figure 13: TPC-H INSERT Intensive - Skyline/Backtracking "
        "ablation (improvement %)",
        database,
        workload,
        BUDGETS,
        VARIANT_ORDER,
    )
    result.notes.append(
        "paper shape: smaller improvements than Figure 12; compression "
        "used sparingly because of update CPU overheads"
    )
    return result


def main() -> None:  # pragma: no cover
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
