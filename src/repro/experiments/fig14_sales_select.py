"""Figure 14 — Sales SELECT-intensive, simple indexes: DTAc vs DTA.

Paper shape: DTAc dominates at every budget (factor ~1.5-2 at tight
budgets) because compression both speeds indexes up and lets more of
them fit.
"""

from __future__ import annotations

from repro.datasets import sales_workload
from repro.experiments.budget_sweep import sweep
from repro.experiments.common import EXPERIMENT_SCALE, ExperimentResult, get_sales

#: Includes a 0% budget: DTAc can still win by compressing base tables
#: and spending the freed bytes (Appendix D.2).
BUDGETS = (0.0, 0.02, 0.05, 0.15, 0.30)
VARIANT_ORDER = ("dtac-both", "dta")


def run(scale: float = EXPERIMENT_SCALE) -> ExperimentResult:
    database = get_sales(scale)
    workload = sales_workload(
        database, select_weight=10.0, insert_weight=1.0
    )
    result = sweep(
        "Figure 14: Sales SELECT Intensive, Simple Indexes "
        "(improvement %)",
        database,
        workload,
        BUDGETS,
        VARIANT_ORDER,
    )
    result.notes.append("paper shape: DTAc >= DTA at every budget")
    return result


def main() -> None:  # pragma: no cover
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
