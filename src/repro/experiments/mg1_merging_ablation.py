"""MG1 — merging ablation: none vs plain vs compression-aware merging.

Section 6.2 ends with the conjecture that revisiting index merging in
the context of compression "could have significant impact on quality of
database design".  This experiment measures it: the full DTAc with
merging disabled, with classic prefix merging, and with the
compression-aware reshapes (key permutation + included-column
promotion) enabled.
"""

from __future__ import annotations

from repro.advisor.advisor import AdvisorOptions, TuningAdvisor, get_variant
from repro.datasets import tpch_workload
from repro.experiments.common import (
    EXPERIMENT_SCALE,
    ExperimentResult,
    get_tpch,
)
from repro.sizeest.estimator import SizeEstimator
from repro.stats.column_stats import DatabaseStats

BUDGET_FRACTIONS = (0.1, 0.3)

MODES = (
    ("no-merge", dict(enable_merging=False)),
    ("plain-merge", dict(enable_merging=True,
                         compression_aware_merging=False)),
    ("cf-aware-merge", dict(enable_merging=True,
                            compression_aware_merging=True)),
)


def run(scale: float = EXPERIMENT_SCALE) -> ExperimentResult:
    database = get_tpch(scale)
    workload = tpch_workload(
        database, select_weight=5.0, insert_weight=1.0
    )
    stats = DatabaseStats(database)
    estimator = SizeEstimator(database, stats=stats)
    total = database.total_data_bytes()

    result = ExperimentResult(
        name="MG1: Index merging ablation under compression "
             "(improvement %)",
        headers=("Budget%",) + tuple(name for name, _ in MODES),
    )
    for fraction in BUDGET_FRACTIONS:
        row = [100.0 * fraction]
        for _name, flags in MODES:
            options = AdvisorOptions(
                budget_bytes=total * fraction,
                **{**dict(get_variant("dtac-both").options), **flags},
            )
            advisor = TuningAdvisor(
                database, workload, options,
                estimator=estimator, stats=stats,
            )
            row.append(advisor.run().improvement_pct)
        result.rows.append(tuple(row))
    result.notes.append(
        "paper conjecture (Section 6.2): compression-aware merging "
        "should not lose to plain merging, and merging helps overall"
    )
    return result


def main() -> None:  # pragma: no cover
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
