"""Figure 15 — Sales INSERT-intensive, simple indexes: DTAc vs DTA.

Paper shape: smaller improvements than Figure 14; DTAc avoids
compressing too many indexes (update overheads), so its designs plateau
as budgets grow instead of degrading — unlike the decoupled strawman
(exercised in the ablation benchmarks).
"""

from __future__ import annotations

from repro.datasets import sales_workload
from repro.experiments.budget_sweep import sweep
from repro.experiments.common import EXPERIMENT_SCALE, ExperimentResult, get_sales
from repro.experiments.fig14_sales_select import BUDGETS, VARIANT_ORDER


def run(scale: float = EXPERIMENT_SCALE) -> ExperimentResult:
    database = get_sales(scale)
    workload = sales_workload(
        database, select_weight=1.0, insert_weight=10.0
    )
    result = sweep(
        "Figure 15: Sales INSERT Intensive, Simple Indexes "
        "(improvement %)",
        database,
        workload,
        BUDGETS,
        VARIANT_ORDER,
    )
    result.notes.append(
        "paper shape: DTAc >= DTA; designs stabilize at larger budgets"
    )
    return result


def main() -> None:  # pragma: no cover
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
