"""Figure 10 — Error bias and variance of deduction vs ``a``.

Shows ColExt bias/stddev for NS (ROW) and LD (PAGE) as a function of the
number of indexes extrapolated from.  Paper shape: both grow roughly
linearly with a; LD bias is negative (fragmentation over-penalized), NS
bias slightly positive.
"""

from __future__ import annotations

from repro.compression.base import CompressionMethod
from repro.experiments.common import (
    EXPERIMENT_SCALE,
    ExperimentResult,
    TPCH_ERROR_KEYSETS,
    error_stats,
    get_tpch,
)
from repro.experiments.table3_deduction_fit import measure_errors


def run(scale: float = EXPERIMENT_SCALE) -> ExperimentResult:
    database = get_tpch(scale)
    colext, _colset = measure_errors(database, TPCH_ERROR_KEYSETS)
    result = ExperimentResult(
        name="Figure 10: Error Bias and Variance of Deduction",
        headers=("a", "NS-Bias%", "NS-Stddev%", "LD-Bias%", "LD-Stddev%"),
    )
    arities = sorted(
        set(colext[CompressionMethod.ROW]) | set(colext[CompressionMethod.PAGE])
    )
    for a in arities:
        ns_bias, ns_std = error_stats(colext[CompressionMethod.ROW].get(a, []))
        ld_bias, ld_std = error_stats(colext[CompressionMethod.PAGE].get(a, []))
        result.rows.append(
            (a, 100 * ns_bias, 100 * ns_std, 100 * ld_bias, 100 * ld_std)
        )
    result.notes.append("paper shape: errors grow ~linearly with a")
    return result


def main() -> None:  # pragma: no cover
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
