"""Run every paper-reproduction experiment and print the tables.

Usage::

    python -m repro.experiments [scale]

``scale`` defaults to :data:`repro.experiments.EXPERIMENT_SCALE`.
"""

from __future__ import annotations

import importlib
import sys
import time

from repro.experiments import ALL_EXPERIMENTS, EXPERIMENT_SCALE


def main(argv: list[str]) -> None:
    scale = float(argv[1]) if len(argv) > 1 else EXPERIMENT_SCALE
    print(f"# Running {len(ALL_EXPERIMENTS)} experiments at scale={scale}\n")
    for name in ALL_EXPERIMENTS:
        module = importlib.import_module(f"repro.experiments.{name}")
        start = time.perf_counter()
        result = module.run(scale=scale)
        elapsed = time.perf_counter() - start
        print(result.format())
        print(f"[{name}: {elapsed:.1f}s]\n")


if __name__ == "__main__":
    main(sys.argv)
