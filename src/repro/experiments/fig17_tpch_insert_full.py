"""Figure 17 — TPC-H INSERT-intensive with all features: DTAc vs DTA.

Paper shape: DTAc still wins, but at large budgets its designs converge
toward DTA's because compressed structures cost too much to maintain
under heavy bulk loads.
"""

from __future__ import annotations

from repro.datasets import tpch_workload
from repro.experiments.budget_sweep import sweep
from repro.experiments.common import EXPERIMENT_SCALE, ExperimentResult, get_tpch
from repro.experiments.fig16_tpch_select_full import BUDGETS, VARIANT_ORDER


def run(scale: float = EXPERIMENT_SCALE) -> ExperimentResult:
    database = get_tpch(scale)
    workload = tpch_workload(
        database, select_weight=1.0, insert_weight=10.0
    )
    result = sweep(
        "Figure 17: TPC-H INSERT Intensive, All Features "
        "(improvement %)",
        database,
        workload,
        BUDGETS,
        VARIANT_ORDER,
        enable_partial=True,
        enable_mv=True,
    )
    result.notes.append(
        "paper shape: DTAc converges toward DTA at large budgets"
    )
    return result


def main() -> None:  # pragma: no cover
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
