"""Figure 12 — TPC-H SELECT-intensive, simple indexes: turning the
candidate-selection (Skyline) and enumeration (Backtracking) techniques
on and off across storage budgets.

Paper shape: only DTAc(Both) achieves the best designs, with the gap
largest at tight budgets; plain DTA trails everything since it cannot
compress at all.
"""

from __future__ import annotations

from repro.datasets import tpch_workload
from repro.experiments.budget_sweep import sweep
from repro.experiments.common import EXPERIMENT_SCALE, ExperimentResult, get_tpch

VARIANT_ORDER = (
    "dtac-both", "dtac-skyline", "dtac-backtrack", "dtac-none", "dta"
)
#: Budgets as fractions of the raw database size.  The paper sweeps
#: 50 MB..1500 MB on ~1 GB TPC-H SF1; on our substrate compression frees
#: a larger share of the (scaled) database, so the regime where budgets
#: actually bind — where the paper's techniques differentiate — sits at
#: smaller fractions.  The grid therefore starts at 0%.
BUDGETS = (0.0, 0.02, 0.05, 0.15, 0.40)


def run(scale: float = EXPERIMENT_SCALE) -> ExperimentResult:
    database = get_tpch(scale)
    workload = tpch_workload(
        database, select_weight=10.0, insert_weight=1.0
    )
    result = sweep(
        "Figure 12: TPC-H SELECT Intensive - Skyline/Backtracking "
        "ablation (improvement %)",
        database,
        workload,
        BUDGETS,
        VARIANT_ORDER,
    )
    result.notes.append(
        "paper shape: DTAc(Both) >= each single technique >= DTAc(None) "
        ">= DTA, gap largest at tight budgets"
    )
    return result


def main() -> None:  # pragma: no cover
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
