"""VL1 — deploy-time validation of DTAc recommendations.

Not a paper table, but the experiment a skeptical reader runs first:
take the recommendation DTAc produced from *estimates*, physically build
every recommended structure on the full data, and re-evaluate.  The
paper's Section 7.1 claim that "most cases have less than 10% errors"
in size estimation is checked here as a by-product.
"""

from __future__ import annotations

from repro.api import tune
from repro.datasets import tpch_workload
from repro.engine import validate_recommendation
from repro.experiments.common import (
    EXPERIMENT_SCALE,
    ExperimentResult,
    get_tpch,
)
from repro.sizeest.estimator import SizeEstimator
from repro.stats.column_stats import DatabaseStats

BUDGET_FRACTIONS = (0.1, 0.3, 0.6)


def run(scale: float = EXPERIMENT_SCALE) -> ExperimentResult:
    database = get_tpch(scale)
    workload = tpch_workload(
        database, select_weight=5.0, insert_weight=1.0
    )
    stats = DatabaseStats(database)
    estimator = SizeEstimator(database, stats=stats)
    total = database.total_data_bytes()

    result = ExperimentResult(
        name="VL1: Recommendation validation under ground-truth sizes",
        headers=("Budget%", "est-impr%", "true-impr%", "max-size-err%",
                 "budget-ok"),
    )
    for fraction in BUDGET_FRACTIONS:
        rec = tune(
            database, workload, total * fraction, variant="dtac-both",
            estimator=estimator, stats=stats,
        )
        report = validate_recommendation(
            rec, database, workload, stats=stats, estimator=estimator
        )
        result.rows.append((
            100.0 * fraction,
            100.0 * report.estimated_improvement,
            100.0 * report.true_size_improvement,
            100.0 * report.max_abs_size_error,
            str(report.budget_holds),
        ))
    result.notes.append(
        "paper shape (Section 7.1): size estimates mostly within 10%; "
        "recommendations must hold once structures are physically built"
    )
    return result


def main() -> None:  # pragma: no cover
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
