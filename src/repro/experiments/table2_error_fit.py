"""Table 2 — Least-squares fit of SampleCF errors across datasets.

For each dataset (TPC-H z=0/1/3, TPC-DS-lite) and a grid of sampling
fractions, measures SampleCF bias and standard deviation for NULL
suppression (ROW, the "NS" class) and local-dictionary/PAGE ("LD") over
an index population, then fits each statistic as ``-c * ln f``.

Paper (TPC-H Z=0): LD-Bias -0.015 ln f, NS-Stddev -0.0062 ln f,
LD-Stddev -0.018 ln f, and the coefficients are stable across datasets —
the stability is what this experiment checks; our absolute coefficients
differ because the substrate (and sample row counts) differ.
"""

from __future__ import annotations

from repro.compression.base import CompressionMethod
from repro.experiments.common import (
    EXPERIMENT_SCALE,
    ExperimentResult,
    TPCDS_ERROR_KEYSETS,
    TPCH_ERROR_KEYSETS,
    error_stats,
    fit_through_origin,
    get_tpcds,
    get_tpch,
    index_population,
)
from repro.experiments.samplecf_errors import ErrorLab

import math

FRACTIONS = (0.01, 0.025, 0.05, 0.10)


def measure_dataset(database, keysets, fractions=FRACTIONS):
    """Per fraction: (NS bias, NS std, LD bias, LD std)."""
    lab = ErrorLab(database)
    indexes = index_population(database, keysets)
    out: dict[float, tuple[float, float, float, float]] = {}
    for f in fractions:
        ns_errors, ld_errors = [], []
        for ix in indexes:
            err = lab.samplecf_error(ix, f)
            if ix.method is CompressionMethod.ROW:
                ns_errors.append(err)
            else:
                ld_errors.append(err)
        ns_bias, ns_std = error_stats(ns_errors)
        ld_bias, ld_std = error_stats(ld_errors)
        out[f] = (ns_bias, ns_std, ld_bias, ld_std)
    return out


def fit_coefficients(per_fraction) -> dict[str, float]:
    """Fit each statistic to -c*ln(f); returns the c values."""
    xs = [-math.log(f) for f in per_fraction]
    ns_bias = [v[0] for v in per_fraction.values()]
    ns_std = [v[1] for v in per_fraction.values()]
    ld_bias = [v[2] for v in per_fraction.values()]
    ld_std = [v[3] for v in per_fraction.values()]
    return {
        "NS-Bias": fit_through_origin(xs, ns_bias),
        "NS-Stddev": fit_through_origin(xs, ns_std),
        "LD-Bias": fit_through_origin(xs, ld_bias),
        "LD-Stddev": fit_through_origin(xs, ld_std),
    }


def run(scale: float = EXPERIMENT_SCALE) -> ExperimentResult:
    datasets = [
        ("TPC-H Z=0", get_tpch(scale, z=0.0), TPCH_ERROR_KEYSETS),
        ("TPC-H Z=1", get_tpch(scale, z=1.0), TPCH_ERROR_KEYSETS),
        ("TPC-H Z=3", get_tpch(scale, z=3.0), TPCH_ERROR_KEYSETS),
        ("TPC-DS", get_tpcds(scale), TPCDS_ERROR_KEYSETS),
    ]
    result = ExperimentResult(
        name="Table 2: Least Square Error Analysis on Various Data Sets "
             "(coefficient c of error = -c*ln f)",
        headers=("Dataset", "LD-Bias", "NS-Stddev", "LD-Stddev"),
    )
    coefs_per_dataset = []
    for name, database, keysets in datasets:
        per_fraction = measure_dataset(database, keysets)
        coefs = fit_coefficients(per_fraction)
        coefs_per_dataset.append(coefs)
        result.rows.append(
            (name, coefs["LD-Bias"], coefs["NS-Stddev"], coefs["LD-Stddev"])
        )
    result.rows.append(
        ("paper(TPC-H Z=0)", 0.015, 0.0062, 0.018)
    )
    # Stability check: spread of each coefficient across datasets.
    for key in ("LD-Bias", "NS-Stddev", "LD-Stddev"):
        values = [c[key] for c in coefs_per_dataset]
        lo, hi = min(values), max(values)
        result.notes.append(f"{key}: range {lo:.4f}..{hi:.4f} across datasets")
    return result


def main() -> None:  # pragma: no cover
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
