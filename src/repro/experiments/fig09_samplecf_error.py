"""Figure 9 — Error bias and variance of SampleCF vs sampling fraction.

Plots (as table rows) LD-Bias, NS-Stddev and LD-Stddev against the
sampling ratio f over the TPC-H index population.  Expected shape: all
three decrease as f grows; NS bias stays near zero.
"""

from __future__ import annotations

from repro.experiments.common import (
    EXPERIMENT_SCALE,
    ExperimentResult,
    TPCH_ERROR_KEYSETS,
    get_tpch,
)
from repro.experiments.table2_error_fit import FRACTIONS, measure_dataset


def run(scale: float = EXPERIMENT_SCALE) -> ExperimentResult:
    database = get_tpch(scale)
    per_fraction = measure_dataset(database, TPCH_ERROR_KEYSETS, FRACTIONS)
    result = ExperimentResult(
        name="Figure 9: Error Bias and Variance of SampleCF",
        headers=("f", "LD-Bias%", "NS-Stddev%", "LD-Stddev%", "NS-Bias%"),
    )
    for f, (ns_bias, ns_std, ld_bias, ld_std) in per_fraction.items():
        result.rows.append(
            (f, 100 * ld_bias, 100 * ns_std, 100 * ld_std, 100 * ns_bias)
        )
    result.notes.append(
        "paper shape: errors shrink quickly as f grows; NS-Bias ~ 0"
    )
    return result


def main() -> None:  # pragma: no cover
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
