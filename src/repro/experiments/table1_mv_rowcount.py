"""Table 1 — Average errors of #tuples in aggregated MVs.

Compares three ways to estimate the number of groups an aggregated MV
will contain, from a 1% sample (Appendix B.3):

* Optimizer — single-column statistics + independence assumption,
* Multiply — scale the sampled group count by 1/f,
* AE — the Adaptive Estimator over the sample's COUNT column.

Paper's numbers: Optimizer 96%, Multiply 379%, AE 6%.  Expected shape:
AE << Optimizer << Multiply.
"""

from __future__ import annotations

from repro.advisor.candidates import mv_candidates
from repro.datasets import tpch_workload
from repro.experiments.common import EXPERIMENT_SCALE, ExperimentResult, get_tpch
from repro.physical.mv_def import MVDefinition
from repro.sampling.join_synopsis import build_join_synopsis
from repro.sampling.mv_sample import build_mv_sample
from repro.sampling.sample_manager import SampleManager
from repro.stats.column_stats import DatabaseStats
from repro.stats.distinct import independence_estimator, multiply_estimator
from repro.stats.selectivity import conjunction_selectivity


def tpch_mv_population(database) -> list[MVDefinition]:
    """All aggregated MV candidates proposed for the TPC-H queries."""
    workload = tpch_workload(database)
    out: list[MVDefinition] = []
    seen = set()
    for ws in workload.queries:
        for mv in mv_candidates(database, ws.statement):
            if mv.group_by and mv not in seen:
                seen.add(mv)
                out.append(mv)
    return out


def true_mv_rows(database, mv: MVDefinition) -> int:
    """Ground truth: group the full (synopsis of the) data."""
    fact = database.table(mv.fact_table)
    synopsis = build_join_synopsis(database, fact, mv.fact_table)
    sample = build_mv_sample(database, mv, synopsis, synopsis.num_rows, 1.0)
    return sample.table.num_rows


def optimizer_estimate(database, stats: DatabaseStats,
                       mv: MVDefinition) -> float:
    """Independence-assumption estimate from single-column statistics."""
    distincts = []
    for col in mv.group_by:
        for tname in mv.tables:
            table = database.table(tname)
            if table.has_column(col):
                distincts.append(stats.table(tname).column(col).n_distinct)
                break
    fact_stats = stats.table(mv.fact_table)
    sel = 1.0
    for p in mv.predicates:
        for tname in mv.tables:
            table = database.table(tname)
            if all(table.has_column(c) for c in p.columns()):
                sel *= conjunction_selectivity(stats.table(tname), (p,))
                break
    n_filtered = fact_stats.n_rows * sel
    return independence_estimator(distincts, n_filtered)


def run(scale: float = EXPERIMENT_SCALE, fraction: float = 0.05) -> ExperimentResult:
    """The default fraction is 5% (not the paper's 1%) because our scaled
    tables are ~1/500 of TPC-H SF1: this keeps the *absolute* sample row
    counts in a regime where frequency statistics exist at all.  MVs whose
    sample contains no qualifying row are skipped (no estimator has any
    input there; at SF1 they don't occur)."""
    database = get_tpch(scale)
    stats = DatabaseStats(database)
    manager = SampleManager(database, min_sample_rows=500)
    mvs = tpch_mv_population(database)

    errors = {"Optimizer": [], "Multiply": [], "AE": []}
    skipped = 0
    for mv in mvs:
        truth = true_mv_rows(database, mv)
        if truth == 0:
            continue
        sample = manager.mv_sample(mv, fraction)
        if sample.sample_groups == 0:
            skipped += 1
            continue
        eff = sample.fraction
        est_opt = optimizer_estimate(database, stats, mv)
        est_mul = multiply_estimator(sample.sample_groups, eff)
        est_ae = sample.est_rows
        errors["Optimizer"].append(abs(est_opt / truth - 1.0))
        errors["Multiply"].append(abs(est_mul / truth - 1.0))
        errors["AE"].append(abs(est_ae / truth - 1.0))

    result = ExperimentResult(
        name="Table 1: Average Errors of #Tuples in Aggregated MVs",
        headers=("Estimator", "AvgError%", "Paper%"),
    )
    paper = {"Optimizer": 96.0, "Multiply": 379.0, "AE": 6.0}
    for method in ("Optimizer", "Multiply", "AE"):
        errs = errors[method]
        avg = 100.0 * sum(errs) / len(errs) if errs else 0.0
        result.rows.append((method, avg, paper[method]))
    result.notes.append(
        f"{len(errors['AE'])} aggregated MVs, f={fraction:.0%}, "
        f"{skipped} skipped (empty sample)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
