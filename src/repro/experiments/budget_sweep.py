"""Shared budget-sweep runner behind Figures 12-17.

Runs a set of advisor variants over a grid of storage budgets (expressed
as fractions of the raw database size) and reports the paper's
improvement metric per (budget, variant).  One SizeEstimator is shared
across every run: estimated sizes do not depend on the advisor variant,
and sharing reproduces how DTA amortizes its sample infrastructure.
"""

from __future__ import annotations

from typing import Sequence

from repro.advisor.advisor import AdvisorOptions, TuningAdvisor, get_variant, variant_names
from repro.catalog.schema import Database
from repro.errors import AdvisorError
from repro.experiments.common import ExperimentResult
from repro.sizeest.estimator import SizeEstimator
from repro.stats.column_stats import DatabaseStats
from repro.workload.query import Workload


def sweep(
    name: str,
    database: Database,
    workload: Workload,
    budget_fractions: Sequence[float],
    variants: Sequence[str],
    enable_partial: bool = False,
    enable_mv: bool = False,
) -> ExperimentResult:
    """Improvement% per (budget, variant).

    Args:
        name: result title.
        database/workload: what to tune.
        budget_fractions: budgets as fractions of raw data bytes.
        variants: advisor variant names (see repro.advisor.variants()).
        enable_partial/enable_mv: the paper's "all features" switch.
    """
    unknown = [v for v in variants if v not in variant_names()]
    if unknown:
        raise AdvisorError(f"unknown advisor variants {unknown}")
    stats = DatabaseStats(database)
    estimator = SizeEstimator(database, stats=stats)
    total = database.total_data_bytes()

    result = ExperimentResult(
        name=name,
        headers=("Budget%",) + tuple(variants),
    )
    for fraction in budget_fractions:
        budget = total * fraction
        row: list = [100.0 * fraction]
        for variant in variants:
            options = AdvisorOptions(
                budget_bytes=budget,
                enable_partial=enable_partial,
                enable_mv=enable_mv,
                **dict(get_variant(variant).options),
            )
            advisor = TuningAdvisor(
                database, workload, options,
                estimator=estimator, stats=stats,
            )
            outcome = advisor.run()
            row.append(outcome.improvement_pct)
        result.rows.append(tuple(row))
    result.notes.append(
        f"database raw size {total / 1024:.0f} KiB; improvement% = "
        "1 - cost(recommended)/cost(base), optimizer-estimated"
    )
    return result
