"""Figure 11 — Real runtime of index size estimation: DTAc with and
without deduction.

Runs the full DTAc (all features: partial + MV indexes) on TPC-H twice —
once forcing SampleCF on every index ("w/o deduction") and once with the
deduction framework — and breaks total wall-clock into the paper's
stacked categories: Other, {Table, Partial, MV} x {Sample, Estimate}.

Paper shape: deductions shrink Table-Estimate from the dominating share
to modest; sampling itself stays small because of the amortized sample
manager.
"""

from __future__ import annotations

import time

from repro.advisor.advisor import AdvisorOptions, TuningAdvisor, get_variant
from repro.datasets import tpch_workload
from repro.experiments.common import EXPERIMENT_SCALE, ExperimentResult, get_tpch
from repro.sizeest.estimator import SizeEstimator
from repro.stats.column_stats import DatabaseStats

CATEGORIES = (
    "Other",
    "Table-Sample",
    "Table-Estimate",
    "Partial-Sample",
    "Partial-Estimate",
    "MV-Sample",
    "MV-Estimate",
)


def run_once(database, workload, use_deduction: bool,
             budget_fraction: float = 0.4) -> dict[str, float]:
    stats = DatabaseStats(database)
    estimator = SizeEstimator(
        database, stats=stats, use_deduction=use_deduction
    )
    options = AdvisorOptions(
        budget_bytes=database.total_data_bytes() * budget_fraction,
        enable_partial=True,
        enable_mv=True,
        **dict(get_variant("dtac-both").options),
    )
    advisor = TuningAdvisor(
        database, workload, options, estimator=estimator, stats=stats
    )
    start = time.perf_counter()
    advisor.run()
    total = time.perf_counter() - start

    samplecf_runs = estimator.runner.run_count
    manager = estimator.manager
    table_sample = manager.timings.get("table_sample", 0.0)
    partial_sample = manager.timings.get("filtered_sample", 0.0)
    mv_sample = (
        manager.timings.get("join_synopsis", 0.0)
        + manager.timings.get("mv_sample", 0.0)
    )
    # estimator.timings includes both planning and the index builds on
    # samples; the sample *construction* time above happens inside it,
    # so subtract to avoid double counting.
    table_est = max(0.0, estimator.timings.get("table", 0.0) - table_sample)
    partial_est = max(
        0.0, estimator.timings.get("partial", 0.0) - partial_sample
    )
    mv_est = max(0.0, estimator.timings.get("mv", 0.0) - mv_sample)
    accounted = (
        table_sample + partial_sample + mv_sample
        + table_est + partial_est + mv_est
    )
    return {
        "Other": max(0.0, total - accounted),
        "Table-Sample": table_sample,
        "Table-Estimate": table_est,
        "Partial-Sample": partial_sample,
        "Partial-Estimate": partial_est,
        "MV-Sample": mv_sample,
        "MV-Estimate": mv_est,
        "Total": total,
        "SampleCF-Runs": float(samplecf_runs),
    }


def run(scale: float = EXPERIMENT_SCALE) -> ExperimentResult:
    database = get_tpch(scale)
    workload = tpch_workload(database, select_weight=5.0, insert_weight=1.0)
    without = run_once(database, workload, use_deduction=False)
    with_ded = run_once(database, workload, use_deduction=True)

    result = ExperimentResult(
        name="Figure 11: Real Runtime of Index Size Estimation (seconds)",
        headers=("Component", "DTAc w/o Deduction", "DTAc"),
    )
    for cat in CATEGORIES:
        result.rows.append((cat, without[cat], with_ded[cat]))
    result.rows.append(("Total", without["Total"], with_ded["Total"]))
    result.rows.append(
        ("SampleCF-Runs", without["SampleCF-Runs"],
         with_ded["SampleCF-Runs"])
    )
    est_wo = sum(without[c] for c in CATEGORIES[1:])
    est_w = sum(with_ded[c] for c in CATEGORIES[1:])
    if est_w > 0:
        result.notes.append(
            f"size-estimation time {est_wo:.2f}s -> {est_w:.2f}s "
            f"({est_wo / est_w:.1f}x) with deductions"
        )
    result.notes.append(
        "paper shape: deduction removes most of Table-Estimate; "
        "samples are amortized so *-Sample stays small"
    )
    return result


def main() -> None:  # pragma: no cover
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
