"""Shared machinery for the SampleCF / deduction error analyses
(Appendix C): builds an index population, measures estimated vs true
compressed sizes, and fits the error-model coefficients."""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.schema import Database
from repro.physical.index_def import IndexDef
from repro.sampling.sample_manager import SampleManager
from repro.sizeest.analytic import AnalyticSizer
from repro.sizeest.deduction import DeductionEngine, MultiColumnDistinct
from repro.sizeest.error_model import DEFAULT_ERROR_MODEL, ErrorRV
from repro.sizeest.samplecf import SampleCFRunner, SizeEstimate
from repro.stats.column_stats import DatabaseStats
from repro.storage.index_build import measure_structure
from repro.storage.rowcache import SerializedTable


@dataclass
class ErrorLab:
    """Measures SampleCF / deduction errors against full-build truths."""

    database: Database

    def __post_init__(self) -> None:
        self.stats = DatabaseStats(self.database)
        # A low floor keeps the sampling-fraction grid meaningful on the
        # scaled-down tables (the production default of 200 would clamp
        # every f below ~5% to the same sample).
        self.manager = SampleManager(self.database, min_sample_rows=50)
        self.sizer = AnalyticSizer(self.database, self.stats, self.manager)
        self.runner = SampleCFRunner(
            self.manager, self.sizer, DEFAULT_ERROR_MODEL
        )
        self.distinct = MultiColumnDistinct(self.database, self.manager)
        self.deduction = DeductionEngine(
            self.database, self.sizer, self.distinct
        )
        self._serialized: dict[str, SerializedTable] = {}
        self._truths: dict[IndexDef, float] = {}

    # ------------------------------------------------------------------
    def true_size(self, index: IndexDef) -> float:
        cached = self._truths.get(index)
        if cached is not None:
            return cached
        serialized = self._serialized.get(index.table)
        if serialized is None:
            serialized = SerializedTable(self.database.table(index.table))
            self._serialized[index.table] = serialized
        size = measure_structure(
            serialized, index.kind, index.key_columns,
            index.included_columns, index.method,
        )
        truth = float(size.total_bytes)
        self._truths[index] = truth
        return truth

    # ------------------------------------------------------------------
    def samplecf_error(self, index: IndexDef, fraction: float) -> float:
        """est/true - 1 for one SampleCF run at ``fraction``."""
        est = self.runner.run(index, fraction)
        return est.est_bytes / self.true_size(index) - 1.0

    # ------------------------------------------------------------------
    def exact_estimate(self, index: IndexDef) -> SizeEstimate:
        """A SizeEstimate whose bytes are the measured truth (the
        'perfectly accurate inputs' of the paper's X_ColExt analysis)."""
        return SizeEstimate(
            index=index,
            est_bytes=self.true_size(index),
            compression_fraction=1.0,
            source="exact",
            error=ErrorRV.exact(),
            cost=0.0,
        )

    def colext_error(self, index: IndexDef) -> float:
        """Deduction error when extrapolating ``index`` from its single
        column sub-indexes whose sizes are known exactly."""
        parts = [
            self.exact_estimate(
                IndexDef(index.table, (col,), kind=index.kind,
                         method=index.method)
            )
            for col in index.key_columns
        ]
        deduced = self.deduction.colext(index, parts)
        return deduced / self.true_size(index) - 1.0

    def colset_error(self, index: IndexDef) -> float:
        """Deduction error of ColSet: estimate ``index`` from its
        reversed-key sibling (exact input)."""
        sibling = IndexDef(
            index.table,
            tuple(reversed(index.key_columns)),
            kind=index.kind,
            method=index.method,
        )
        deduced = self.deduction.colset(index, self.exact_estimate(sibling))
        return deduced / self.true_size(index) - 1.0
