"""Table 3 — Error formula for deduction.

Measures ColSet and ColExt deduction errors with perfectly accurate
inputs (children sizes set to measured truths) over composite TPC-H
indexes, then fits bias/stddev linearly in ``a`` (the number of indexes
extrapolated from).

Paper: ColSet(NS) bias 0 / stddev 0.0003; ColExt(NS) bias 0.01a / stddev
0.002a; ColExt(LD) bias -0.03a / stddev 0.01a.
"""

from __future__ import annotations

from repro.compression.base import CompressionMethod
from repro.experiments.common import (
    EXPERIMENT_SCALE,
    ExperimentResult,
    TPCH_ERROR_KEYSETS,
    error_stats,
    fit_through_origin,
    get_tpch,
)
from repro.experiments.samplecf_errors import ErrorLab
from repro.physical.index_def import IndexDef
from repro.storage.index_build import IndexKind


def composite_population(keysets) -> dict[int, list[tuple[str, tuple[str, ...]]]]:
    """Composite key sets grouped by arity a = #columns."""
    out: dict[int, list] = {}
    for table, keys in keysets.items():
        for cols in keys:
            if len(cols) >= 2:
                out.setdefault(len(cols), []).append((table, cols))
    return out


def measure_errors(database, keysets):
    """Returns per-method per-a deduction errors + colset errors."""
    lab = ErrorLab(database)
    composites = composite_population(keysets)
    colext: dict[CompressionMethod, dict[int, list[float]]] = {
        CompressionMethod.ROW: {},
        CompressionMethod.PAGE: {},
    }
    colset_errors: list[float] = []
    for a, entries in sorted(composites.items()):
        for table, cols in entries:
            for method in (CompressionMethod.ROW, CompressionMethod.PAGE):
                ix = IndexDef(table, cols, kind=IndexKind.SECONDARY,
                              method=method)
                err = lab.colext_error(ix)
                colext[method].setdefault(a, []).append(err)
                if method is CompressionMethod.ROW:
                    colset_errors.append(lab.colset_error(ix))
    return colext, colset_errors


def run(scale: float = EXPERIMENT_SCALE) -> ExperimentResult:
    database = get_tpch(scale)
    colext, colset_errors = measure_errors(database, TPCH_ERROR_KEYSETS)

    result = ExperimentResult(
        name="Table 3: Error Formula for Deduction (fit: value = c * a)",
        headers=("Deduction", "Bias-c", "Stddev-c", "PaperBias", "PaperStd"),
    )
    cs_bias, cs_std = error_stats(colset_errors)
    result.rows.append(("ColSet(NS)", cs_bias, cs_std, 0.0, 0.0003))

    paper = {
        CompressionMethod.ROW: ("ColExt(NS)", 0.01, 0.002),
        CompressionMethod.PAGE: ("ColExt(LD)", -0.03, 0.01),
    }
    for method, (label, p_bias, p_std) in paper.items():
        xs, bias_ys, std_ys = [], [], []
        for a, errors in sorted(colext[method].items()):
            bias, std = error_stats(errors)
            xs.append(float(a))
            bias_ys.append(bias)
            std_ys.append(std)
        result.rows.append(
            (
                label,
                fit_through_origin(xs, bias_ys),
                fit_through_origin(xs, std_ys),
                p_bias,
                p_std,
            )
        )
    result.notes.append(
        "children sizes are measured truths (isolates the deduction's own "
        "error, as in the paper's X_ColExt)"
    )
    return result


def main() -> None:  # pragma: no cover
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
