"""CS1 — RLE's sort-order sensitivity in a column store (Section 8).

The paper's future-work section motivates column-store design with the
observation that "RLE can make column data several orders of magnitude
smaller ... but it is quite sensitive to the sort orders".  This
experiment quantifies that on the TPC-H lineitem columns: the same
projection, RLE encoded, under different sort orders.

Expected shape: the sorted-by-low-cardinality order compresses the
leading column by orders of magnitude; the id-ordered variant gains
almost nothing; the best-encoding column store always sits at or below
the pure-RLE point.
"""

from __future__ import annotations

from repro.columnstore import ProjectionDef, ProjectionSizer
from repro.compression.base import CompressionMethod
from repro.experiments.common import (
    EXPERIMENT_SCALE,
    ExperimentResult,
    get_tpch,
)

#: Projection body: a typical aggregation column set on lineitem.
PROJ_COLUMNS = (
    "l_returnflag",
    "l_shipmode",
    "l_shipdate",
    "l_quantity",
    "l_extendedprice",
)

#: Sort orders from very low cardinality to unique.
SORT_ORDERS = (
    ("l_returnflag",),
    ("l_shipmode",),
    ("l_shipdate",),
    ("l_extendedprice",),
)


def run(scale: float = EXPERIMENT_SCALE) -> ExperimentResult:
    database = get_tpch(scale)
    lineitem = database.table("lineitem")
    sizer = ProjectionSizer(lineitem)
    fixed_width = lineitem.num_rows * sum(
        lineitem.column(c).width for c in PROJ_COLUMNS
    )

    result = ExperimentResult(
        name="CS1: RLE sort-order sensitivity on lineitem "
             "(column-store projections)",
        headers=("sort order", "rle-bytes", "best-bytes",
                 "rle-lead-col", "x-smaller-lead"),
    )
    for order in SORT_ORDERS:
        columns = order + tuple(
            c for c in PROJ_COLUMNS if c not in order
        )
        projection = ProjectionDef("lineitem", columns, order)
        rle = sizer.measure(
            projection, encodings=(CompressionMethod.RLE,)
        )
        best = sizer.measure(projection)
        lead = order[0]
        lead_rle = sum(rle.column_used_bytes[c] for c in order)
        lead_fixed = lineitem.num_rows * lineitem.column(lead).width
        result.rows.append((
            "+".join(order),
            sum(rle.column_used_bytes.values()),
            sum(best.column_used_bytes.values()),
            lead_rle,
            lead_fixed / max(1, lead_rle),
        ))
    result.notes.append(
        f"fixed-width projection bytes: {fixed_width}"
    )
    result.notes.append(
        "paper shape (Section 8): RLE collapses low-cardinality sort "
        "leaders by orders of magnitude and gains little on unique orders"
    )
    return result


def main() -> None:  # pragma: no cover
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
