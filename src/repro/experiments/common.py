"""Shared infrastructure for the paper-reproduction experiments.

Each experiment module exposes ``run(...) -> ExperimentResult`` plus a
``main()`` so it can be executed as ``python -m repro.experiments.<mod>``;
the benchmark harness under ``benchmarks/`` wraps the same entry points.
Datasets are cached per (kind, scale, z) because several experiments share
them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.catalog.schema import Database
from repro.compression.base import CompressionMethod
from repro.datasets import (
    sales_database,
    tpcds_lite_database,
    tpch_database,
)
from repro.physical.index_def import IndexDef
from repro.storage.index_build import IndexKind

#: Default dataset scale for experiments: small enough that full-data
#: "ground truth" index builds stay fast, large enough for stable stats.
EXPERIMENT_SCALE = 0.2

_DATASETS: dict[tuple, Database] = {}


def get_tpch(scale: float = EXPERIMENT_SCALE, z: float = 0.0) -> Database:
    key = ("tpch", scale, z)
    if key not in _DATASETS:
        _DATASETS[key] = tpch_database(scale=scale, z=z)
    return _DATASETS[key]


def get_sales(scale: float = EXPERIMENT_SCALE) -> Database:
    key = ("sales", scale)
    if key not in _DATASETS:
        _DATASETS[key] = sales_database(scale=scale)
    return _DATASETS[key]


def get_tpcds(scale: float = EXPERIMENT_SCALE) -> Database:
    key = ("tpcds", scale)
    if key not in _DATASETS:
        _DATASETS[key] = tpcds_lite_database(scale=scale)
    return _DATASETS[key]


def clear_dataset_cache() -> None:
    _DATASETS.clear()


# ----------------------------------------------------------------------
@dataclass
class ExperimentResult:
    """A reproduced table/figure: headers + rows + free-form notes."""

    name: str
    headers: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def format(self) -> str:
        widths = [len(h) for h in self.headers]
        rendered = []
        for row in self.rows:
            cells = [_fmt(c) for c in row]
            widths = [max(w, len(c)) for w, c in zip(widths, cells)]
            rendered.append(cells)
        lines = [self.name, "=" * len(self.name)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for cells in rendered:
            lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def print(self) -> None:
        print(self.format())

    def column(self, header: str) -> list:
        i = self.headers.index(header)
        return [row[i] for row in self.rows]


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


# ----------------------------------------------------------------------
def fit_through_origin(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of y = m*x (the paper fits errors through the
    origin: zero error at f=1 / a=0)."""
    sxy = sum(x * y for x, y in zip(xs, ys))
    sxx = sum(x * x for x in xs)
    return sxy / sxx if sxx else 0.0


def error_stats(errors: Sequence[float]) -> tuple[float, float]:
    """(bias, stddev) of ratio errors given as est/true - 1."""
    n = len(errors)
    if n == 0:
        return 0.0, 0.0
    mean = sum(errors) / n
    var = sum((e - mean) ** 2 for e in errors) / max(1, n - 1)
    return mean, math.sqrt(var)


# ----------------------------------------------------------------------
def index_population(
    database: Database,
    table_columns: dict[str, Sequence[Sequence[str]]],
    methods: Sequence[CompressionMethod] = (
        CompressionMethod.ROW,
        CompressionMethod.PAGE,
    ),
) -> list[IndexDef]:
    """Build an index population from explicit column lists per table."""
    out: list[IndexDef] = []
    for table, keysets in table_columns.items():
        for keys in keysets:
            for method in methods:
                out.append(
                    IndexDef(
                        table,
                        tuple(keys),
                        kind=IndexKind.SECONDARY,
                        method=method,
                    )
                )
    return out


#: Representative single/composite key sets over the TPC-H fact tables —
#: the population behind the error analyses (Appendix C "hundreds of
#: indexes"; scaled to stay tractable on a full-build-per-index budget).
TPCH_ERROR_KEYSETS: dict[str, list[tuple[str, ...]]] = {
    "lineitem": [
        ("l_shipdate",),
        ("l_discount",),
        ("l_shipmode",),
        ("l_quantity",),
        ("l_returnflag",),
        ("l_partkey",),
        ("l_shipdate", "l_discount"),
        ("l_shipmode", "l_shipdate"),
        ("l_returnflag", "l_linestatus"),
        ("l_quantity", "l_extendedprice"),
        ("l_shipdate", "l_discount", "l_quantity"),
        ("l_shipmode", "l_returnflag", "l_shipdate"),
        ("l_partkey", "l_suppkey", "l_quantity"),
        ("l_returnflag", "l_shipmode", "l_quantity", "l_discount"),
    ],
    "orders": [
        ("o_orderdate",),
        ("o_orderpriority",),
        ("o_custkey",),
        ("o_orderdate", "o_orderpriority"),
        ("o_orderpriority", "o_orderdate"),
        ("o_custkey", "o_orderdate", "o_totalprice"),
    ],
    "partsupp": [
        ("ps_availqty",),
        ("ps_suppkey", "ps_availqty"),
    ],
}

TPCDS_ERROR_KEYSETS: dict[str, list[tuple[str, ...]]] = {
    "store_sales": [
        ("ss_sold_date_sk",),
        ("ss_item_sk",),
        ("ss_quantity",),
        ("ss_promo",),
        ("ss_item_sk", "ss_quantity"),
        ("ss_promo", "ss_sold_date_sk"),
        ("ss_sold_date_sk", "ss_item_sk", "ss_quantity"),
    ],
    "item": [
        ("i_category",),
        ("i_category", "i_brand"),
    ],
}
