"""Column definition."""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.datatypes import DataType


@dataclass(frozen=True)
class Column:
    """A named, typed column of a table.

    Attributes:
        name: column name, unique within its table.
        dtype: the column's :class:`~repro.catalog.datatypes.DataType`.
        nullable: whether NULLs may appear (affects generators and stats).
    """

    name: str
    dtype: DataType
    nullable: bool = False

    @property
    def width(self) -> int:
        """Serialized fixed width in bytes."""
        return self.dtype.width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} {self.dtype.name}"


@dataclass(frozen=True)
class ForeignKey:
    """A key/foreign-key relationship used to build join synopses.

    ``src_table.src_column`` references ``dst_table.dst_column`` (the
    primary key side).
    """

    src_table: str
    src_column: str
    dst_table: str
    dst_column: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.src_table}.{self.src_column} -> "
            f"{self.dst_table}.{self.dst_column}"
        )
