"""Database schema: a set of tables plus foreign-key relationships."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.catalog.column import ForeignKey
from repro.catalog.table import Table
from repro.errors import CatalogError


class Database:
    """A named collection of tables and declared foreign keys.

    Foreign keys drive the join-synopsis construction in
    :mod:`repro.sampling.join_synopsis` and the MV candidate generation in
    the advisor.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._foreign_keys: list[ForeignKey] = []

    # ------------------------------------------------------------------
    def add_table(self, table: Table) -> Table:
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already in {self.name!r}")
        self._tables[table.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"no table {name!r} in database {self.name!r}"
            ) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def tables(self) -> tuple[Table, ...]:
        return tuple(self._tables.values())

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    # ------------------------------------------------------------------
    def add_foreign_key(
        self, src_table: str, src_column: str, dst_table: str, dst_column: str
    ) -> ForeignKey:
        """Declare ``src_table.src_column -> dst_table.dst_column``."""
        src = self.table(src_table)
        dst = self.table(dst_table)
        src.column(src_column)
        dst.column(dst_column)
        fk = ForeignKey(src_table, src_column, dst_table, dst_column)
        self._foreign_keys.append(fk)
        return fk

    @property
    def foreign_keys(self) -> tuple[ForeignKey, ...]:
        return tuple(self._foreign_keys)

    def foreign_keys_from(self, table_name: str) -> list[ForeignKey]:
        """Outgoing FKs of ``table_name`` (fact -> dimension direction)."""
        return [fk for fk in self._foreign_keys if fk.src_table == table_name]

    def foreign_key_closure(self, table_name: str) -> list[ForeignKey]:
        """All FKs reachable from ``table_name`` following FK edges.

        Used to build a join synopsis that joins a fact-table sample with
        every (transitively) referenced dimension table.
        """
        out: list[ForeignKey] = []
        seen: set[str] = set()
        frontier = [table_name]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for fk in self.foreign_keys_from(current):
                out.append(fk)
                frontier.append(fk.dst_table)
        return out

    # ------------------------------------------------------------------
    def total_data_bytes(self) -> int:
        """Uncompressed heap bytes across all tables (used as the base for
        "budget as % of database size" sweeps)."""
        return sum(t.num_rows * t.row_width for t in self.tables)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Database({self.name!r}, tables={list(self._tables)})"


def build_database(name: str, tables: Iterable[Table],
                   foreign_keys: Sequence[tuple[str, str, str, str]] = ()) -> Database:
    """Convenience constructor from a table iterable plus FK 4-tuples."""
    db = Database(name)
    for table in tables:
        db.add_table(table)
    for src_t, src_c, dst_t, dst_c in foreign_keys:
        db.add_foreign_key(src_t, src_c, dst_t, dst_c)
    return db
