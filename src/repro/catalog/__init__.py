"""Catalog: data types, columns, tables, databases."""

from repro.catalog.column import Column, ForeignKey
from repro.catalog.datatypes import (
    INT,
    INT32,
    DATE,
    CharType,
    DataType,
    DateType,
    DecimalType,
    IntType,
    VarCharType,
    char,
    decimal,
    varchar,
)
from repro.catalog.schema import Database, build_database
from repro.catalog.table import Table

__all__ = [
    "Column",
    "ForeignKey",
    "DataType",
    "IntType",
    "DecimalType",
    "DateType",
    "CharType",
    "VarCharType",
    "INT",
    "INT32",
    "DATE",
    "char",
    "decimal",
    "varchar",
    "Table",
    "Database",
    "build_database",
]
