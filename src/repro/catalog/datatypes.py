"""Column data types and their fixed-width serialized form.

Every type serializes a Python value into a fixed number of bytes.  The
fixed-width representation intentionally wastes space the way an
uncompressed row store does (leading zero bytes on small integers, padding
on short strings): NULL suppression and the other codecs in
:mod:`repro.compression` then reclaim exactly that waste, so compression
fractions respond to the value distribution just as they do in a real
system.

Conventions:

* ``None`` (SQL NULL) serializes to all-zero bytes for any type.
* Integers (and the integer-backed DECIMAL and DATE types) use big-endian
  two's-complement, so small non-negative values have leading ``0x00``
  bytes and small negative values leading ``0xFF`` bytes.
* Character types are right-padded with ``0x00``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError


@dataclass(frozen=True)
class DataType:
    """Base class for column data types.

    Attributes:
        width: number of bytes of the fixed-width serialized form.
    """

    width: int

    def encode(self, value) -> bytes:
        """Serialize ``value`` into exactly ``self.width`` bytes."""
        raise NotImplementedError

    def decode(self, data: bytes):
        """Inverse of :meth:`encode`."""
        raise NotImplementedError

    @property
    def is_character(self) -> bool:
        """True for CHAR/VARCHAR style (right-padded) types."""
        return False

    @property
    def name(self) -> str:
        return type(self).__name__.upper()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class IntType(DataType):
    """Signed integer stored big-endian two's-complement."""

    width: int = 8

    def encode(self, value) -> bytes:
        if value is None:
            return b"\x00" * self.width
        try:
            return int(value).to_bytes(self.width, "big", signed=True)
        except OverflowError as exc:
            raise StorageError(f"integer {value!r} overflows {self}") from exc

    def decode(self, data: bytes):
        return int.from_bytes(data, "big", signed=True)

    @property
    def name(self) -> str:
        return f"INT{self.width * 8}"


@dataclass(frozen=True)
class DecimalType(DataType):
    """Fixed-point decimal stored as a scaled big-endian integer.

    ``scale`` digits after the decimal point; values are Python ints of the
    *scaled* quantity (e.g. cents), mirroring how generators in
    :mod:`repro.datasets` produce monetary data.
    """

    width: int = 8
    scale: int = 2

    def encode(self, value) -> bytes:
        if value is None:
            return b"\x00" * self.width
        return int(value).to_bytes(self.width, "big", signed=True)

    def decode(self, data: bytes):
        return int.from_bytes(data, "big", signed=True)

    def to_float(self, scaled: int) -> float:
        """Convert a scaled integer back to a float for display."""
        return scaled / (10**self.scale)

    @property
    def name(self) -> str:
        return f"DECIMAL({self.width * 8},{self.scale})"


@dataclass(frozen=True)
class DateType(DataType):
    """Date stored as days-since-epoch in 4 big-endian bytes."""

    width: int = 4

    def encode(self, value) -> bytes:
        if value is None:
            return b"\x00" * self.width
        return int(value).to_bytes(self.width, "big", signed=True)

    def decode(self, data: bytes):
        return int.from_bytes(data, "big", signed=True)

    @property
    def name(self) -> str:
        return "DATE"


@dataclass(frozen=True)
class CharType(DataType):
    """Fixed-length character string, right-padded with 0x00."""

    width: int = 16

    def encode(self, value) -> bytes:
        if value is None:
            return b"\x00" * self.width
        raw = value.encode("utf-8") if isinstance(value, str) else bytes(value)
        if len(raw) > self.width:
            raise StorageError(
                f"string of {len(raw)} bytes too long for {self.name}"
            )
        return raw.ljust(self.width, b"\x00")

    def decode(self, data: bytes):
        return data.rstrip(b"\x00").decode("utf-8")

    @property
    def is_character(self) -> bool:
        return True

    @property
    def name(self) -> str:
        return f"CHAR({self.width})"


@dataclass(frozen=True)
class VarCharType(CharType):
    """Variable-length string; stored padded like CHAR in the row format.

    The uncompressed row format in this library is fixed-width (like a CHAR
    column); ROW/NULL-suppression compression recovers the variable-length
    representation.  This mirrors the paper's setting where compression
    removes padding waste.
    """

    width: int = 32

    @property
    def name(self) -> str:
        return f"VARCHAR({self.width})"


# Convenience singletons for the common shapes used throughout the library.
INT = IntType()
INT32 = IntType(width=4)
DATE = DateType()


def decimal(scale: int = 2) -> DecimalType:
    """A standard 8-byte scaled decimal."""
    return DecimalType(width=8, scale=scale)


def char(width: int) -> CharType:
    return CharType(width=width)


def varchar(width: int) -> VarCharType:
    return VarCharType(width=width)
