"""In-memory table: schema plus column-wise data.

Tables hold their data column-wise (one Python list per column), which is
convenient both for the compression codecs (which operate per column) and
for the statistics builders.  Row-wise views are materialized on demand.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Sequence

from repro.catalog.column import Column
from repro.errors import CatalogError


class Table:
    """A named collection of columns with (optional) data.

    Args:
        name: table name, unique within a schema.
        columns: ordered column definitions.
        primary_key: names of the primary key columns (may be empty).
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Sequence[str] = (),
    ) -> None:
        if not columns:
            raise CatalogError(f"table {name!r} needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in table {name!r}")
        unknown = [k for k in primary_key if k not in names]
        if unknown:
            raise CatalogError(
                f"primary key columns {unknown} not in table {name!r}"
            )
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        self.primary_key: tuple[str, ...] = tuple(primary_key)
        self._by_name = {c.name: c for c in self.columns}
        self._data: dict[str, list] = {c.name: [] for c in self.columns}

    # ------------------------------------------------------------------
    # Schema access
    # ------------------------------------------------------------------
    def column(self, name: str) -> Column:
        """Look up a column by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(
                f"no column {name!r} in table {self.name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def row_width(self) -> int:
        """Uncompressed fixed row width in bytes (sum of column widths)."""
        return sum(c.width for c in self.columns)

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return len(self._data[self.columns[0].name])

    def column_values(self, name: str) -> list:
        """The raw value list of one column (shared, do not mutate)."""
        self.column(name)
        return self._data[name]

    def append_row(self, values: Sequence) -> None:
        """Append one row given values in column order."""
        if len(values) != len(self.columns):
            raise CatalogError(
                f"row of {len(values)} values for {len(self.columns)}-column "
                f"table {self.name!r}"
            )
        for col, value in zip(self.columns, values):
            self._data[col.name].append(value)

    def extend_rows(self, rows: Iterable[Sequence]) -> None:
        """Append many rows (in column order)."""
        for row in rows:
            self.append_row(row)

    def set_column_data(self, name: str, values: list) -> None:
        """Replace one column's data wholesale (generators use this)."""
        self.column(name)
        if self.num_rows and len(values) != self.num_rows:
            raise CatalogError(
                f"column {name!r}: {len(values)} values but table "
                f"{self.name!r} has {self.num_rows} rows"
            )
        self._data[name] = values

    def iter_rows(self, columns: Sequence[str] | None = None) -> Iterator[tuple]:
        """Iterate rows as tuples, optionally projecting to ``columns``."""
        names = list(columns) if columns is not None else list(self.column_names)
        cols = [self.column_values(n) for n in names]
        return zip(*cols) if cols else iter(())

    def rows(self, columns: Sequence[str] | None = None) -> list[tuple]:
        """Materialize :meth:`iter_rows` into a list."""
        return list(self.iter_rows(columns))

    # ------------------------------------------------------------------
    # Derived tables
    # ------------------------------------------------------------------
    def empty_clone(self, name: str | None = None) -> "Table":
        """A new empty table with the same columns (and primary key)."""
        return Table(name or self.name, self.columns, self.primary_key)

    def sample(self, fraction: float, rng: random.Random) -> "Table":
        """A uniform Bernoulli row sample of this table.

        Args:
            fraction: sampling fraction in (0, 1].
            rng: the random source (callers own seeding for determinism).
        """
        if not 0.0 < fraction <= 1.0:
            raise CatalogError(f"sampling fraction {fraction} not in (0, 1]")
        out = self.empty_clone(f"{self.name}_sample")
        if fraction >= 1.0:
            for col in self.column_names:
                out.set_column_data(col, list(self.column_values(col)))
            return out
        n = self.num_rows
        picks = [i for i in range(n) if rng.random() < fraction]
        for col in self.column_names:
            src = self.column_values(col)
            out.set_column_data(col, [src[i] for i in picks])
        return out

    def project(self, columns: Sequence[str], name: str | None = None) -> "Table":
        """A new table holding only ``columns`` (data shared by copy)."""
        cols = [self.column(c) for c in columns]
        out = Table(name or f"{self.name}_proj", cols)
        for c in columns:
            out.set_column_data(c, list(self.column_values(c)))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Table({self.name!r}, {len(self.columns)} cols, "
            f"{self.num_rows} rows)"
        )
