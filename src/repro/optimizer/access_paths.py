"""Single-table access path selection and costing.

Given a table's predicates, the needed columns and the available
structures (base heap/clustered + secondary indexes), pick the cheapest
access path.  Compressed structures read fewer pages but pay the
decompression CPU term; the optimizer only charges decompression for the
columns the query actually uses (Appendix A.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.schema import Database
from repro.errors import OptimizerError
from repro.optimizer.constants import CostConstants
from repro.physical.index_def import IndexDef
from repro.stats.column_stats import TableStats
from repro.stats.selectivity import predicate_selectivity
from repro.storage.index_build import IndexKind
from repro.storage.page import PAGE_SIZE
from repro.workload.expr import Predicate


@dataclass(frozen=True)
class AccessPlan:
    """A costed way to produce a table's qualifying rows.

    Attributes:
        index: structure used (None = no structure registered: cold heap).
        cost: total access cost.
        io_cost / cpu_cost: breakdown.
        rows_out: estimated qualifying rows produced.
        used_seek: whether a key seek restricted the scan.
    """

    index: IndexDef | None
    cost: float
    io_cost: float
    cpu_cost: float
    rows_out: float
    used_seek: bool


def _split_predicates(predicates: tuple[Predicate, ...]):
    eq_cols, range_cols = set(), set()
    for p in predicates:
        for c in p.columns():
            if p.is_equality:
                eq_cols.add(c)
            elif p.is_range:
                range_cols.add(c)
    return eq_cols, range_cols


def _prefix_selectivity(
    index: IndexDef,
    predicates: tuple[Predicate, ...],
    stats: TableStats,
) -> tuple[float, int]:
    """Selectivity of the sargable key-prefix predicates and the number
    of predicates consumed by the seek."""
    eq_cols, range_cols = _split_predicates(predicates)
    usable = index.key_prefix_length(eq_cols, range_cols)
    if usable == 0:
        return 1.0, 0
    prefix_cols = set(index.key_columns[:usable])
    sel = 1.0
    consumed = 0
    for p in predicates:
        cols = set(p.columns())
        if cols <= prefix_cols:
            sel *= predicate_selectivity(stats, p)
            consumed += 1
    return sel, consumed


def _filter_subsumed(
    index: IndexDef, predicates: tuple[Predicate, ...]
) -> tuple[bool, tuple[Predicate, ...]]:
    """Partial-index usability: the index filter must be implied by the
    query's predicates (checked structurally: the filter predicate must
    literally appear in the conjunction).  Returns (usable, remaining)."""
    if index.filter is None:
        return True, predicates
    if index.filter in predicates:
        remaining = tuple(p for p in predicates if p != index.filter)
        return True, remaining
    return False, predicates


@dataclass(frozen=True)
class AccessShape:
    """The discrete part of costing one structure against one predicate
    context — everything :func:`cost_access` decides before the float
    arithmetic starts.  Shapes depend only on (index identity,
    predicates, needed columns, statistics), so callers that sweep the
    same predicate context over many candidate sets cache them and
    replay the flat numeric part through
    :mod:`repro.optimizer.kernels`.

    Attributes:
        sel_prefix: selectivity of the sargable key-prefix predicates.
        residual: predicates applied while scanning (not seek-consumed).
        sel_all: min(prefix selectivity, full conjunction selectivity).
        covering: leaf rows carry every needed column.
        can_seek: a key seek restricts the scan.
        compressed: the structure pays per-tuple decompression.
        n_used_cols: decompressed columns per tuple (0 if uncompressed).
        beta: the method's per-tuple per-column decompression constant.
        n_needed: how many columns the query needs from the table (the
            non-covering base lookup's decompression width) — carried
            in the shape so one kernel batch can mix lanes from
            different statements.
    """

    sel_prefix: float
    residual: int
    sel_all: float
    covering: bool
    can_seek: bool
    compressed: bool
    n_used_cols: int
    beta: float
    n_needed: int


def access_shape(
    index: IndexDef,
    predicates: tuple[Predicate, ...],
    needed_columns: tuple[str, ...],
    stats: TableStats,
    constants: CostConstants,
) -> AccessShape | None:
    """Extract one structure's :class:`AccessShape`, or None if the
    structure is unusable for this predicate context (a partial index
    whose filter the conjunction does not imply)."""
    usable, predicates = _filter_subsumed(index, predicates)
    if not usable:
        return None
    method = index.method
    covering = index.covers(needed_columns)
    sel_prefix, consumed = _prefix_selectivity(index, predicates, stats)
    residual = max(0, len(predicates) - consumed)
    total_sel = 1.0
    for p in predicates:
        total_sel *= predicate_selectivity(stats, p)
    sel_all = min(sel_prefix, total_sel)
    can_seek = (
        index.kind in (IndexKind.CLUSTERED, IndexKind.SECONDARY)
        and consumed > 0
    )
    if method.is_compressed:
        used_cols = [
            c for c in needed_columns if c in index.column_sequence
        ] or list(index.key_columns)
        n_used_cols = len(used_cols)
        beta = constants.beta[method]
    else:
        n_used_cols = 0
        beta = 0.0
    return AccessShape(
        sel_prefix=sel_prefix,
        residual=residual,
        sel_all=sel_all,
        covering=covering,
        can_seek=can_seek,
        compressed=method.is_compressed,
        n_used_cols=n_used_cols,
        beta=beta,
        n_needed=len(needed_columns),
    )


def plan_from_shape(
    index: IndexDef,
    index_bytes: float,
    rows_in_structure: float,
    shape: AccessShape,
    constants: CostConstants,
    base_lookup: tuple[IndexDef, float] | None,
) -> AccessPlan | None:
    """The flat numeric part of :func:`cost_access`: evaluate one
    already-shaped structure.  This scalar function is the identity
    reference for every kernel backend — the numpy kernel mirrors these
    expressions operation for operation (see
    :mod:`repro.optimizer.kernels`)."""
    pages = max(1.0, index_bytes / PAGE_SIZE)
    if shape.can_seek:
        pages_read = max(1.0, pages * shape.sel_prefix)
        rows_read = rows_in_structure * shape.sel_prefix
        io = pages_read * constants.io_seq_page + 2 * constants.io_random_page
    else:
        rows_read = rows_in_structure
        io = pages * constants.io_seq_page

    # Residual predicates are applied while scanning; every scanned tuple
    # pays base CPU.
    cpu = rows_read * constants.cpu_tuple
    cpu += rows_read * shape.residual * constants.cpu_predicate
    if shape.compressed:
        cpu += shape.beta * rows_read * shape.n_used_cols

    rows_out = rows_in_structure * shape.sel_all

    if not shape.covering:
        if base_lookup is None:
            return None
        base_index, _base_bytes = base_lookup
        # RID/key lookups into the base structure: one random page per
        # qualifying row (they are effectively random).
        lookups = rows_out
        lookup_io = lookups * constants.io_random_page
        lookup_cpu = lookups * constants.cpu_tuple
        if base_index.method.is_compressed:
            lookup_cpu += constants.decompress_cpu(
                base_index.method, lookups, shape.n_needed
            )
        io += lookup_io
        cpu += lookup_cpu

    return AccessPlan(
        index=index,
        cost=io + cpu,
        io_cost=io,
        cpu_cost=cpu,
        rows_out=rows_out,
        used_seek=shape.can_seek,
    )


def cost_access(
    index: IndexDef,
    index_bytes: float,
    rows_in_structure: float,
    predicates: tuple[Predicate, ...],
    needed_columns: tuple[str, ...],
    stats: TableStats,
    constants: CostConstants,
    base_lookup: tuple[IndexDef, float] | None = None,
) -> AccessPlan | None:
    """Cost one candidate structure, or None if unusable.

    Args:
        index: the structure.
        index_bytes: its (estimated) size in bytes.
        rows_in_structure: entries it stores.
        predicates: the query's predicates on this table.
        needed_columns: columns the query needs from this table.
        stats: the table's statistics.
        constants: cost constants.
        base_lookup: (base structure, its bytes) for non-covering seeks.
    """
    shape = access_shape(index, predicates, needed_columns, stats, constants)
    if shape is None:
        return None
    return plan_from_shape(
        index, index_bytes, rows_in_structure, shape, constants,
        base_lookup,
    )


def best_access_plan(
    database: Database,
    stats: TableStats,
    table: str,
    structures: list[tuple[IndexDef, float, float]],
    predicates: tuple[Predicate, ...],
    needed_columns: tuple[str, ...],
    constants: CostConstants,
    kernel=None,
    shape_key=None,
) -> AccessPlan:
    """Pick the cheapest plan among ``structures``.

    Args:
        structures: (index, bytes, rows) triples available on the table;
            must contain at least the base structure.
        kernel: optional :class:`~repro.optimizer.kernels.CostKernel`
            to evaluate the structures as one batch (float-identical to
            the scalar loop by the kernel identity contract).
        shape_key: hashable (statement context, table) key identifying
            the fixed (predicates, needed columns) context, enabling
            the kernel's per-run shape cache.
    """
    base = None
    for index, size_bytes, _rows in structures:
        if index.kind in (IndexKind.HEAP, IndexKind.CLUSTERED):
            base = (index, size_bytes)
            break
    if kernel is not None:
        lanes = []
        for index, size_bytes, rows in structures:
            shape = kernel.shape_for(
                shape_key, index, predicates, needed_columns, stats,
                constants,
            )
            if shape is not None:
                lanes.append((index, size_bytes, rows, shape))
        plans = [
            plan
            for plan in kernel.batch_access_plans(lanes, constants, base)
            if plan is not None
        ]
    else:
        plans = []
        for index, size_bytes, rows in structures:
            plan = cost_access(
                index, size_bytes, rows, predicates, needed_columns,
                stats, constants, base_lookup=base,
            )
            if plan is not None:
                plans.append(plan)
    if not plans:
        raise OptimizerError(
            f"no usable access path for table {table!r} "
            f"(structures={len(structures)})"
        )
    return min(plans, key=lambda p: p.cost)
