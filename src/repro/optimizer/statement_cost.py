"""Whole-statement costing under a hypothetical configuration.

SELECT statements: per-table access plans (star-style FK joins keep the
fact cardinality), join/group/sort CPU, with MV substitution when an MV
index structurally matches the query.  INSERT/UPDATE/DELETE statements:
per-structure maintenance costs including the compression CPU term
(Appendix A.1) — the reason DTAc avoids over-compressing INSERT-heavy
workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.catalog.schema import Database
from repro.errors import OptimizerError
from repro.optimizer.access_paths import AccessPlan, best_access_plan
from repro.optimizer.constants import CostConstants
from repro.physical.configuration import Configuration
from repro.physical.index_def import IndexDef
from repro.physical.mv_def import MVDefinition
from repro.stats.column_stats import DatabaseStats
from repro.stats.selectivity import conjunction_selectivity
from repro.storage.index_build import IndexKind
from repro.storage.page import PAGE_SIZE
from repro.workload.query import (
    DeleteQuery,
    InsertQuery,
    SelectQuery,
    Statement,
    UpdateQuery,
)

#: (index -> (est_bytes, est_rows)) provider the advisor wires in.
SizeLookup = Callable[[IndexDef], tuple[float, float]]


@dataclass(frozen=True)
class CostBreakdown:
    """Estimated cost of a statement under a configuration."""

    total: float
    io: float
    cpu: float
    plans: tuple[AccessPlan, ...] = ()
    used_mv: bool = False


class StatementCoster:
    """Costs statements against configurations (the optimizer core)."""

    def __init__(
        self,
        database: Database,
        stats: DatabaseStats,
        sizes: SizeLookup,
        constants: CostConstants,
        kernel=None,
    ) -> None:
        self.database = database
        self.stats = stats
        self.sizes = sizes
        self.constants = constants
        self.kernel = kernel

    # ------------------------------------------------------------------
    def cost(self, statement: Statement, config: Configuration) -> CostBreakdown:
        if isinstance(statement, SelectQuery):
            return self._cost_select(statement, config)
        if isinstance(statement, InsertQuery):
            return self._cost_insert(statement, config)
        if isinstance(statement, UpdateQuery):
            return self._cost_update(statement, config)
        if isinstance(statement, DeleteQuery):
            return self._cost_delete(statement, config)
        raise OptimizerError(f"cannot cost {type(statement).__name__}")

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def _structures_for(
        self, table: str, config: Configuration
    ) -> list[tuple[IndexDef, float, float]]:
        """(index, bytes, rows) for every structure on ``table``; a plain
        heap is synthesized if the configuration tracks no base."""
        out = []
        structures = list(config.indexes_on(table))
        if config.base_structure(table) is None:
            # Untracked table: scan happens over a plain heap.
            structures.insert(0, IndexDef(table, (), kind=IndexKind.HEAP))
        for index in structures:
            if index.is_mv_index:
                continue
            size_bytes, rows = self.sizes(index)
            out.append((index, size_bytes, rows))
        # Base first (best_access_plan relies on finding it for lookups).
        out.sort(key=lambda t: t[0].kind is not IndexKind.HEAP
                 and t[0].kind is not IndexKind.CLUSTERED)
        return out

    def _cost_select(self, query: SelectQuery,
                     config: Configuration) -> CostBreakdown:
        mv_plan = self._try_mv_plan(query, config)

        constants = self.constants
        io = cpu = 0.0
        plans: list[AccessPlan] = []
        fact = query.root_table
        fact_rows_out = None
        dim_sel_product = 1.0
        for table in query.tables:
            stats = self.stats.table(table)
            preds = query.predicates_of_table(self.database, table)
            needed = query.columns_of_table(self.database, table)
            structures = self._structures_for(table, config)
            plan = best_access_plan(
                self.database, stats, table, structures, preds, needed,
                constants, kernel=self.kernel, shape_key=(query, table),
            )
            plans.append(plan)
            io += plan.io_cost
            cpu += plan.cpu_cost
            if table == fact:
                fact_rows_out = plan.rows_out
            else:
                dim_sel_product *= conjunction_selectivity(stats, preds)

        if fact_rows_out is None:  # pragma: no cover - defensive
            fact_rows_out = 0.0
        # FK joins preserve fact cardinality; dimension predicates thin it.
        join_rows = fact_rows_out * dim_sel_product
        if len(query.tables) > 1:
            cpu += fact_rows_out * len(query.joins) * constants.cpu_join_probe
            for plan in plans[1:]:
                cpu += plan.rows_out * constants.cpu_tuple

        if query.group_by or query.aggregates:
            cpu += join_rows * constants.cpu_group
        if query.order_by and not self._order_satisfied(query, plans[0]):
            out_rows = max(2.0, join_rows)
            cpu += out_rows * math.log2(out_rows) * constants.cpu_sort_factor

        base = CostBreakdown(
            total=io + cpu, io=io, cpu=cpu, plans=tuple(plans)
        )
        if mv_plan is not None and mv_plan.total < base.total:
            return mv_plan
        return base

    def _order_satisfied(self, query: SelectQuery, fact_plan: AccessPlan) -> bool:
        index = fact_plan.index
        if index is None or len(query.tables) > 1:
            return False
        k = len(query.order_by)
        return index.key_columns[:k] == tuple(query.order_by)

    # ------------------------------------------------------------------
    # MV substitution
    # ------------------------------------------------------------------
    def _try_mv_plan(self, query: SelectQuery,
                     config: Configuration) -> CostBreakdown | None:
        best: CostBreakdown | None = None
        # Stable member order: the strict '<' tie-break below must not
        # depend on set iteration (PYTHONHASHSEED) for reproducibility.
        for index in config.ordered():
            if not index.is_mv_index:
                continue
            if not mv_matches_query(index.mv, query):
                continue
            size_bytes, rows = self.sizes(index)
            pages = max(1.0, size_bytes / PAGE_SIZE)
            io = pages * self.constants.io_seq_page
            cpu = rows * self.constants.cpu_tuple
            if index.method.is_compressed:
                n_cols = max(1, len(index.mv.group_by)
                             + len(index.mv.aggregates))
                cpu += self.constants.decompress_cpu(
                    index.method, rows, n_cols
                )
            total = io + cpu
            if best is None or total < best.total:
                best = CostBreakdown(
                    total=total, io=io, cpu=cpu, used_mv=True
                )
        return best

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def maintenance_structures(
        self, table: str, config: Configuration
    ) -> list[IndexDef]:
        """Every structure of ``config`` that stores rows of ``table``
        (base first, then secondaries, then MVs sourcing the table)."""
        structures: list[IndexDef] = []
        base = config.base_structure(table)
        if base is None:
            base = IndexDef(table, (), kind=IndexKind.HEAP)
        structures.append(base)
        structures.extend(config.secondary_indexes(table))
        for index in config.ordered():
            if index.is_mv_index and table in index.mv.tables:
                structures.append(index)
        return structures

    def structure_maintenance(
        self, table: str, n_rows: float, index: IndexDef
    ) -> tuple[float, float]:
        """(io, cpu) contribution of one structure to reflecting
        ``n_rows`` new/changed rows of ``table`` — a pure function of
        the structure, the row count and the table's stats/sizes, which
        is what lets the delta layer memoize it per structure."""
        constants = self.constants
        affected = n_rows
        if index.is_partial:
            affected = n_rows * conjunction_selectivity(
                self.stats.table(table), (index.filter,)
            )
        if index.is_mv_index:
            # Incremental group maintenance: each source row touches
            # one group (random page) amortized by locality.
            cpu = affected * constants.cpu_insert_per_index
            io = affected / 64.0 * constants.io_random_page
            return io, cpu
        size_bytes, rows = self.sizes(index)
        rows_total = max(rows, 1.0)
        bytes_per_row = size_bytes / rows_total
        io = affected * bytes_per_row / PAGE_SIZE * constants.io_seq_page
        cpu = affected * constants.cpu_insert_per_index
        if index.kind is IndexKind.SECONDARY:
            # Secondary entries land in key order, not load order.
            io += affected / 128.0 * constants.io_random_page
        cpu += constants.compress_cpu(index.method, affected)
        return io, cpu

    def _maintenance_cost(
        self, table: str, n_rows: float, config: Configuration
    ) -> CostBreakdown:
        """Cost to reflect ``n_rows`` new/changed rows of ``table`` in
        every structure of the configuration that stores them.

        Accumulated with :func:`math.fsum` over the per-structure
        contributions: the exactly-rounded sum is independent of
        structure order, so the delta layer can rebuild the identical
        total from memoized contributions in any order."""
        contributions = [
            self.structure_maintenance(table, n_rows, index)
            for index in self.maintenance_structures(table, config)
        ]
        io = math.fsum(c[0] for c in contributions)
        cpu = math.fsum(c[1] for c in contributions)
        return CostBreakdown(total=io + cpu, io=io, cpu=cpu)

    def _cost_insert(self, stmt: InsertQuery,
                     config: Configuration) -> CostBreakdown:
        return self._maintenance_cost(stmt.table, float(stmt.n_rows), config)

    def _cost_update(self, stmt: UpdateQuery,
                     config: Configuration) -> CostBreakdown:
        stats = self.stats.table(stmt.table)
        sel = conjunction_selectivity(stats, stmt.predicates)
        affected = stats.n_rows * sel
        # Find the rows (as a SELECT of the key columns) + maintain.
        probe = SelectQuery(
            tables=(stmt.table,),
            select_columns=tuple(stmt.set_columns),
            predicates=stmt.predicates,
        )
        find = self._cost_select(probe, config)
        maintain = self._maintenance_cost(stmt.table, affected, config)
        return CostBreakdown(
            total=find.total + maintain.total,
            io=find.io + maintain.io,
            cpu=find.cpu + maintain.cpu,
        )

    def _cost_delete(self, stmt: DeleteQuery,
                     config: Configuration) -> CostBreakdown:
        stats = self.stats.table(stmt.table)
        sel = conjunction_selectivity(stats, stmt.predicates)
        affected = stats.n_rows * sel
        probe = SelectQuery(tables=(stmt.table,), predicates=stmt.predicates)
        find = self._cost_select(probe, config)
        maintain = self._maintenance_cost(stmt.table, affected, config)
        return CostBreakdown(
            total=find.total + maintain.total,
            io=find.io + maintain.io,
            cpu=find.cpu + maintain.cpu,
        )


def mv_matches_query(mv: MVDefinition, query: SelectQuery) -> bool:
    """Structural MV matching: same table set, same grouping, the query's
    aggregates present in the MV, the MV's filter implied by (contained
    in) the query's predicates, and any residual query predicate
    referencing only MV storage (group-by) columns."""
    if set(mv.tables) != set(query.tables):
        return False
    if tuple(mv.group_by) != tuple(query.group_by):
        return False
    for agg in query.aggregates:
        if agg not in mv.aggregates:
            return False
    mv_preds = set(mv.predicates)
    query_preds = set(query.predicates)
    if not mv_preds <= query_preds:
        return False
    residual = query_preds - mv_preds
    allowed = set(mv.group_by)
    for p in residual:
        if not set(p.columns()) <= allowed:
            return False
    return True
