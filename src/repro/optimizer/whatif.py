"""The what-if optimizer API (Section 3 / Figure 1).

Physical design tools ask "what would this query cost under that
hypothetical configuration?".  This facade answers from the
compression-aware cost model, caches per (statement, relevant-structures)
signature — a query's cost only depends on the structures of the tables
it touches — and totals weighted workload costs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from repro.catalog.schema import Database
from repro.parallel.cache import CostCache
from repro.parallel.signature import index_identity
from repro.optimizer.constants import DEFAULT_COST_CONSTANTS, CostConstants
from repro.optimizer.statement_cost import (
    CostBreakdown,
    SizeLookup,
    StatementCoster,
)
from repro.physical.configuration import Configuration
from repro.physical.index_def import IndexDef
from repro.stats.column_stats import DatabaseStats
from repro.workload.query import SelectQuery, Statement
from repro.workload.query import Workload

#: fault-injection hook (see :mod:`repro.service.faults`): rebound to
#: that module's ``fire`` when a plan is installed, None otherwise —
#: declared here so the optimizer never imports the service package.
FAULT_HOOK = None

if TYPE_CHECKING:  # pragma: no cover - import cycle with delta
    from repro.optimizer.delta import DeltaWorkloadCoster


class WhatIfOptimizer:
    """Costs statements/workloads under hypothetical configurations.

    Args:
        database: catalog.
        stats: database statistics.
        sizes: callable ``IndexDef -> (est_bytes, est_rows)``; the advisor
            wires in its size-estimation framework here, which is exactly
            the paper's integration point between DTA and size estimation.
        constants: cost-model constants.
        cost_cache: persistent what-if cost cache shared across runs
            (optional).  Hits replay earlier breakdowns exactly; the key
            embeds each relevant structure's estimated size, so a replay
            is always consistent with the sizes this optimizer would
            feed the cost model.
        cost_context: run-level fingerprint for persistent cost keys
            (sampled data, accuracy constraint, cost constants); a
            string, or a zero-argument callable resolved lazily on the
            first persistent lookup.
        kernel: costing-kernel backend name (``auto``/``numpy``/
            ``python``, see :mod:`repro.optimizer.kernels`) or an
            already-resolved :class:`~repro.optimizer.kernels.CostKernel`.
            Backends are float-identical by contract; the choice only
            affects throughput.
    """

    def __init__(
        self,
        database: Database,
        stats: DatabaseStats | None = None,
        sizes: SizeLookup | None = None,
        constants: CostConstants = DEFAULT_COST_CONSTANTS,
        cost_cache: CostCache | None = None,
        cost_context: str | Callable[[], str] = "",
        kernel="auto",
    ) -> None:
        from repro.optimizer.kernels import CostKernel, resolve_backend

        self.database = database
        self.stats = stats or DatabaseStats(database)
        self._sizes = sizes or self._default_sizes
        if not isinstance(kernel, CostKernel):
            kernel = resolve_backend(kernel or "auto")
        self.kernel = kernel
        self.coster = StatementCoster(
            database, self.stats, self._lookup_size, constants,
            kernel=self.kernel,
        )
        self._cache: dict[tuple, CostBreakdown] = {}
        #: plan costs recovered from persistent replays (fresh
        #: breakdowns carry their plans inline).
        self._plan_costs: dict[tuple, tuple[float, ...]] = {}
        self.cost_cache = cost_cache
        self._cost_context = cost_context
        self._resolved_context: str | None = None
        self._sized_signatures: dict[tuple, str] = {}
        self.optimizer_calls = 0

    # ------------------------------------------------------------------
    def _default_sizes(self, index: IndexDef) -> tuple[float, float]:
        """Fallback sizing when no estimator is wired in: uncompressed
        analytic size (compression fractions need the framework)."""
        from repro.sizeest.analytic import AnalyticSizer
        from repro.sampling.sample_manager import SampleManager

        if not hasattr(self, "_fallback_sizer"):
            self._fallback_sizer = AnalyticSizer(
                self.database, self.stats, SampleManager(self.database)
            )
        sizer = self._fallback_sizer
        return (
            sizer.uncompressed_bytes(index),
            sizer.estimated_rows(index),
        )

    def _lookup_size(self, index: IndexDef) -> tuple[float, float]:
        return self._sizes(index)

    # ------------------------------------------------------------------
    @staticmethod
    def _index_cache_key(index: IndexDef) -> tuple:
        """Explicit structure identity for cost-cache signatures.

        Delegates to the canonical :func:`index_identity`, which spells
        out every field the cost model can observe — notably the
        **compression method** — so hypothetical configurations that
        differ only in method can never alias to the same cached cost
        entry, regardless of how :class:`IndexDef` equality evolves.
        """
        return index_identity(index)

    def _relevant_structures(
        self, statement: Statement, config: Configuration
    ) -> list[IndexDef]:
        """The structures a statement's cost can depend on: those on the
        tables it touches (MV indexes count when their MV overlaps)."""
        if isinstance(statement, SelectQuery):
            tables = set(statement.tables)
        else:
            tables = {statement.table}
        relevant = []
        for index in config:
            if index.is_mv_index:
                if tables & set(index.mv.tables):
                    relevant.append(index)
            elif index.table in tables:
                relevant.append(index)
        return relevant

    def _signature_of(self, statement: Statement,
                      relevant: Sequence[IndexDef]) -> tuple:
        """In-memory cache key from an already-computed relevant set —
        the single key constructor behind both :meth:`_signature` (what
        the aliasing regression tests probe) and :meth:`cost`."""
        return (
            statement,
            frozenset(self._index_cache_key(ix) for ix in relevant),
        )

    def _signature(self, statement: Statement,
                   config: Configuration) -> tuple:
        """Cache key: the statement plus the structures on its tables."""
        return self._signature_of(
            statement, self._relevant_structures(statement, config)
        )

    def _context(self) -> str:
        if self._resolved_context is None:
            ctx = self._cost_context
            self._resolved_context = ctx() if callable(ctx) else ctx
        return self._resolved_context

    def _sized_signature(self, index: IndexDef) -> str:
        """Memoized sized-structure signature: sizes are fixed for the
        lifetime of this optimizer (the size lookup is deterministic per
        run — the persistent key's context fingerprint assumes exactly
        that), so the lookup + string build happen once per structure,
        not once per costing."""
        identity = self._index_cache_key(index)
        cached = self._sized_signatures.get(identity)
        if cached is None:
            from repro.parallel.signature import sized_index_signature

            cached = sized_index_signature(index, *self._sizes(index))
            self._sized_signatures[identity] = cached
        return cached

    def cost(self, statement: Statement,
             config: Configuration) -> CostBreakdown:
        """Optimizer-estimated cost of one statement."""
        return self.cost_with_plans(statement, config)[0]

    def cost_with_plans(
        self, statement: Statement, config: Configuration
    ) -> "tuple[CostBreakdown, tuple[float, ...] | None]":
        """One statement's cost plus its chosen per-table access-plan
        costs (aligned with ``statement.tables``), or None when plans
        are unknown — an update statement, an MV substitution, or an
        old-format persistent replay.  The delta coster's access-path
        probes compare against these, so they survive persistent
        replays (the cost cache stores them alongside the totals)."""
        relevant = self._relevant_structures(statement, config)
        key = self._signature_of(statement, relevant)
        cached = self._cache.get(key)
        if cached is not None:
            return cached, self._plan_costs_of(key, cached)
        persistent_key = None
        if self.cost_cache is not None:
            persistent_key = CostCache.key_from_signatures(
                statement,
                [self._sized_signature(ix) for ix in relevant],
                self._context(),
            )
            replayed = self.cost_cache.get_with_plans(persistent_key)
            if replayed is not None:
                breakdown, plan_costs = replayed
                self._cache[key] = breakdown
                if plan_costs is not None:
                    self._plan_costs[key] = plan_costs
                return breakdown, plan_costs
        self.optimizer_calls += 1
        breakdown = self.coster.cost(statement, config)
        self._cache[key] = breakdown
        if persistent_key is not None:
            self.cost_cache.put(persistent_key, breakdown)
        return breakdown, self._plan_costs_of(key, breakdown)

    def _plan_costs_of(
        self, key: tuple, breakdown: CostBreakdown
    ) -> "tuple[float, ...] | None":
        if breakdown.plans:
            return tuple(plan.cost for plan in breakdown.plans)
        return self._plan_costs.get(key)

    def delta_coster(self, workload: Workload) -> "DeltaWorkloadCoster":
        """A :class:`~repro.optimizer.delta.DeltaWorkloadCoster` bound
        to this optimizer and ``workload`` (fresh per call: the delta
        memo is per-run state and must not outlive this optimizer's
        size lookup)."""
        from repro.optimizer.delta import DeltaWorkloadCoster

        return DeltaWorkloadCoster(self, workload)

    # ------------------------------------------------------------------
    def cost_batch(
        self,
        statement: Statement,
        configs: Sequence[Configuration],
    ) -> list[CostBreakdown]:
        """Costs of one statement under a *set* of candidate
        configurations, in input order (in-memory and persistent
        cost-cache aware).  Fresh evaluations run through the costing
        kernel wired into the coster (see
        :mod:`repro.optimizer.kernels`), so full-recost sweeps batch
        their per-table access-path arithmetic."""
        return [self.cost(statement, config) for config in configs]

    def workload_cost(self, workload: Workload,
                      config: Configuration) -> float:
        """Weighted total workload cost (the advisor's objective)."""
        return sum(
            ws.weight * self.cost(ws.statement, config).total
            for ws in workload
        )

    def workload_cost_batch(
        self,
        workload: Workload,
        configs: Sequence[Configuration],
        delta: "DeltaWorkloadCoster | None" = None,
    ) -> list[float]:
        """Weighted workload cost of each candidate configuration, in
        input order.  This is the unit the advisor fans out per worker:
        one task = one configuration's full workload cost, so the
        per-configuration float is identical arithmetic either way.

        ``delta`` routes the batch through a
        :class:`~repro.optimizer.delta.DeltaWorkloadCoster` bound to the
        same workload: only statements whose relevant-structure set
        changed get re-evaluated, with bit-identical totals."""
        if FAULT_HOOK is not None:
            FAULT_HOOK("coster.batch", configs=len(configs))
        if delta is not None and delta.workload is workload:
            return delta.batch(configs)
        return [self.workload_cost(workload, config) for config in configs]

    @property
    def cache_entries(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        self._cache.clear()
        self._plan_costs.clear()
        self._sized_signatures.clear()
