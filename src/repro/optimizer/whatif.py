"""The what-if optimizer API (Section 3 / Figure 1).

Physical design tools ask "what would this query cost under that
hypothetical configuration?".  This facade answers from the
compression-aware cost model, caches per (statement, relevant-structures)
signature — a query's cost only depends on the structures of the tables
it touches — and totals weighted workload costs.
"""

from __future__ import annotations

from typing import Sequence

from repro.catalog.schema import Database
from repro.parallel.signature import index_identity
from repro.optimizer.constants import DEFAULT_COST_CONSTANTS, CostConstants
from repro.optimizer.statement_cost import (
    CostBreakdown,
    SizeLookup,
    StatementCoster,
)
from repro.physical.configuration import Configuration
from repro.physical.index_def import IndexDef
from repro.stats.column_stats import DatabaseStats
from repro.workload.query import SelectQuery, Statement
from repro.workload.query import Workload


class WhatIfOptimizer:
    """Costs statements/workloads under hypothetical configurations.

    Args:
        database: catalog.
        stats: database statistics.
        sizes: callable ``IndexDef -> (est_bytes, est_rows)``; the advisor
            wires in its size-estimation framework here, which is exactly
            the paper's integration point between DTA and size estimation.
        constants: cost-model constants.
    """

    def __init__(
        self,
        database: Database,
        stats: DatabaseStats | None = None,
        sizes: SizeLookup | None = None,
        constants: CostConstants = DEFAULT_COST_CONSTANTS,
    ) -> None:
        self.database = database
        self.stats = stats or DatabaseStats(database)
        self._sizes = sizes or self._default_sizes
        self.coster = StatementCoster(
            database, self.stats, self._lookup_size, constants
        )
        self._cache: dict[tuple, CostBreakdown] = {}
        self.optimizer_calls = 0

    # ------------------------------------------------------------------
    def _default_sizes(self, index: IndexDef) -> tuple[float, float]:
        """Fallback sizing when no estimator is wired in: uncompressed
        analytic size (compression fractions need the framework)."""
        from repro.sizeest.analytic import AnalyticSizer
        from repro.sampling.sample_manager import SampleManager

        if not hasattr(self, "_fallback_sizer"):
            self._fallback_sizer = AnalyticSizer(
                self.database, self.stats, SampleManager(self.database)
            )
        sizer = self._fallback_sizer
        return (
            sizer.uncompressed_bytes(index),
            sizer.estimated_rows(index),
        )

    def _lookup_size(self, index: IndexDef) -> tuple[float, float]:
        return self._sizes(index)

    # ------------------------------------------------------------------
    @staticmethod
    def _index_cache_key(index: IndexDef) -> tuple:
        """Explicit structure identity for cost-cache signatures.

        Delegates to the canonical :func:`index_identity`, which spells
        out every field the cost model can observe — notably the
        **compression method** — so hypothetical configurations that
        differ only in method can never alias to the same cached cost
        entry, regardless of how :class:`IndexDef` equality evolves.
        """
        return index_identity(index)

    def _signature(self, statement: Statement,
                   config: Configuration) -> tuple:
        """Cache key: the statement plus the structures on its tables."""
        if isinstance(statement, SelectQuery):
            tables = set(statement.tables)
        else:
            tables = {statement.table}
        relevant = []
        for index in config:
            if index.is_mv_index:
                if tables & set(index.mv.tables):
                    relevant.append(index)
            elif index.table in tables:
                relevant.append(index)
        return (
            statement,
            frozenset(self._index_cache_key(ix) for ix in relevant),
        )

    def cost(self, statement: Statement,
             config: Configuration) -> CostBreakdown:
        """Optimizer-estimated cost of one statement."""
        key = self._signature(statement, config)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self.optimizer_calls += 1
        breakdown = self.coster.cost(statement, config)
        self._cache[key] = breakdown
        return breakdown

    # ------------------------------------------------------------------
    def cost_batch(
        self,
        statement: Statement,
        configs: Sequence[Configuration],
    ) -> list[CostBreakdown]:
        """Costs of one statement under a *set* of candidate
        configurations, in input order (cache-aware)."""
        return [self.cost(statement, config) for config in configs]

    def workload_cost(self, workload: Workload,
                      config: Configuration) -> float:
        """Weighted total workload cost (the advisor's objective)."""
        return sum(
            ws.weight * self.cost(ws.statement, config).total
            for ws in workload
        )

    def workload_cost_batch(
        self,
        workload: Workload,
        configs: Sequence[Configuration],
    ) -> list[float]:
        """Weighted workload cost of each candidate configuration, in
        input order.  This is the unit the advisor fans out per worker:
        one task = one configuration's full workload cost, so the
        per-configuration float is identical arithmetic either way."""
        return [self.workload_cost(workload, config) for config in configs]

    @property
    def cache_entries(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        self._cache.clear()
