"""Cost-model constants.

Abstract cost units: one unit ~ one sequential 8 KiB page read.  The
compression-specific constants are the paper's Appendix A α (CPU to
compress one tuple on write) and β (CPU to decompress one column of one
tuple on read); PAGE compression costs more than ROW on both, as in SQL
Server's micro-benchmarks [13].
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compression.base import CompressionMethod


@dataclass(frozen=True)
class CostConstants:
    """Tunable constants of the what-if cost model.

    Attributes:
        io_seq_page: cost of one sequential page read/write.
        io_random_page: cost of one random page access (seeks, lookups).
        cpu_tuple: base CPU per tuple flowing through an operator.
        cpu_predicate: CPU per residual predicate evaluation per tuple.
        cpu_join_probe: CPU per probe into a join hash table.
        cpu_group: CPU per tuple of hash aggregation.
        cpu_sort_factor: CPU per tuple per log2(rows) of sorting.
        cpu_insert_per_index: CPU to maintain one index entry on insert.
        alpha: per-tuple compression CPU on writes, per method.
        beta: per-tuple per-column decompression CPU on reads, per method.
    """

    io_seq_page: float = 1.0
    io_random_page: float = 4.0
    cpu_tuple: float = 0.01
    cpu_predicate: float = 0.001
    cpu_join_probe: float = 0.004
    cpu_group: float = 0.005
    cpu_sort_factor: float = 0.002
    cpu_insert_per_index: float = 0.01
    alpha: dict = field(
        default_factory=lambda: {
            CompressionMethod.NONE: 0.0,
            CompressionMethod.ROW: 0.006,
            CompressionMethod.PAGE: 0.02,
            CompressionMethod.GLOBAL_DICT: 0.01,
            CompressionMethod.RLE: 0.004,
            CompressionMethod.DELTA: 0.005,
            CompressionMethod.BITPACK: 0.003,
        }
    )
    beta: dict = field(
        default_factory=lambda: {
            CompressionMethod.NONE: 0.0,
            CompressionMethod.ROW: 0.0004,
            CompressionMethod.PAGE: 0.0012,
            CompressionMethod.GLOBAL_DICT: 0.0006,
            CompressionMethod.RLE: 0.0003,
            CompressionMethod.DELTA: 0.0005,
            CompressionMethod.BITPACK: 0.0002,
        }
    )

    def compress_cpu(self, method: CompressionMethod, tuples: float) -> float:
        """Appendix A.1: alpha * #tuples_written."""
        return self.alpha[method] * tuples

    def decompress_cpu(
        self, method: CompressionMethod, tuples: float, columns: int
    ) -> float:
        """Appendix A.2: beta * #tuples_read * #columns_read."""
        return self.beta[method] * tuples * columns


DEFAULT_COST_CONSTANTS = CostConstants()
