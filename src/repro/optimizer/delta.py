"""Delta-aware workload costing: incremental what-if recosting for the
enumeration hot path.

The greedy search costs ``config ∪ {candidate}`` for every pool member at
every step, yet adding one index only changes the plans of statements
that touch its table (exactly what
:meth:`WhatIfOptimizer._relevant_structures` computes).  This module
exploits that three ways, without moving a single float:

* **Statement-level memoization.**  Per-statement weighted cost terms
  are memoized on the statement's *relevant-structure subset signature*
  (the :func:`~repro.parallel.signature.index_identity` set of the
  structures on its tables).  Costing a candidate configuration diffs it
  against a *reference* configuration and re-evaluates only the
  statements whose relevant set actually changed; every other
  statement's term is reused untouched.  The workload total is the sum
  of the per-statement terms in workload order — the identical
  left-to-right accumulation :meth:`WhatIfOptimizer.workload_cost`
  performs, so totals are bit-equal to the full-recost path.

* **Access-path probes.**  For a SELECT statement, adding one secondary
  index only changes the cost if the new index's single-table access
  plan *beats* the plan the optimizer chose without it (plan selection
  is a ``min`` over per-structure plans, and every other term of the
  statement cost is unchanged when the chosen plans are unchanged).
  The coster probes the candidate's plan with one
  :func:`~repro.optimizer.access_paths.cost_access` call — cached per
  (statement, candidate, base structure) — and when the probe *strictly
  loses* against the chosen plan's cost, reuses the reference term as
  the exact new term.  Strictness matters: on a tie the optimizer's
  first-minimum tie-break could switch plans, so ties fall through to a
  full recost.  When the probe *strictly wins* (a unique strict
  minimum), the statement total is rebuilt from the reference's chosen
  plans with the winner patched in, replaying ``_cost_select``'s exact
  accumulation — the same floats in the same order — so even winning
  candidates skip the all-tables x all-structures recost.

* **Bound-based candidate pruning.**  Per statement the coster
  maintains a lower bound — the cheapest cost any enumerable
  configuration could achieve, derived from the cost model over the
  registered candidate universe (every structure's best access plan
  under every possible base, optimistic join/group terms, matching MV
  substitutions; the classic AutoAdmin "atomic configuration" trick).
  ``improvement_possible`` lets the enumerator skip candidates whose
  optimistic total already loses to the current cost without costing
  them at all.  Two prune classes, both decision-identical to the full
  path by construction:

  - *zero-delta certificates* (always on): every affected statement is
    a SELECT whose probes all strictly lose — the candidate's total is
    bit-identical to the current cost, so the full path would compute
    ``delta_cost == 0`` and skip it anyway.
  - *bound pruning* (enabled by the enumerator only where provably
    safe: greedy scoring): the candidate's optimistic improvement is
    below half the enumerator's ``min_improvement`` acceptance
    threshold, so even if costed it could only be chosen-and-rejected,
    which leaves the search state exactly where pruning does.  Under
    backtracking the enumerator instead combines
    :meth:`~DeltaWorkloadCoster.improvement_cap` with a rescue sweep
    (see ``GreedyBacktrackAlgorithm._rescue_candidate_costs``) so the
    best-oversized recovery channel stays decision-identical too.

Determinism contract: recommendations with delta costing on are
byte-identical to the full-recost path at any worker count.  Reuse only
ever happens when the reused float is *provably the bit-identical value*
the full path would compute; pruning only ever skips work whose outcome
is provably invisible.

The coster is strictly per-run state: its memo keys do not embed size
estimates (unlike the persistent :class:`~repro.parallel.cache.CostCache`),
so a memo must never outlive the estimator whose sizes it was built
from.  Sweep orchestration honors that by construction — every (seed,
budget) unit's :class:`TuningAdvisor` builds a fresh coster against its
own seeded estimator, the delta-memo equivalent of handing each unit an
*empty* fork view of the persistent caches — which keeps sharded and
sequential sweeps byte-identical.  :meth:`fork_view` offers the same
isolation as an explicit API for embedders that hold a coster across
runs.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.optimizer.access_paths import (
    best_access_plan,
    cost_access,
    plan_from_shape,
)
from repro.optimizer.statement_cost import mv_matches_query
from repro.parallel.signature import index_identity
from repro.physical.configuration import Configuration
from repro.physical.index_def import IndexDef
from repro.stats.selectivity import conjunction_selectivity
from repro.storage.index_build import IndexKind
from repro.storage.page import PAGE_SIZE
from repro.workload.query import (
    DeleteQuery,
    InsertQuery,
    SelectQuery,
    UpdateQuery,
    Workload,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle with whatif
    from repro.optimizer.whatif import WhatIfOptimizer

#: sentinel distinguishing "probe not yet computed" from "plan unusable".
_UNPROBED = object()


class DeltaWorkloadCoster:
    """Incremental workload costing against a reference configuration.

    Args:
        whatif: the what-if optimizer providing full statement costings
            (with its in-memory and persistent caches) plus the sizes,
            stats and cost constants the probes must match exactly.
        workload: the weighted workload being tuned; the statement order
            fixes the float accumulation order of every total.
    """

    def __init__(self, whatif: "WhatIfOptimizer", workload: Workload) -> None:
        self.whatif = whatif
        self.workload = workload
        statements = list(workload)
        self._stmts = [ws.statement for ws in statements]
        self._weights = [ws.weight for ws in statements]
        self._is_select = [
            isinstance(s, SelectQuery) for s in self._stmts
        ]
        self._tables: list[set[str]] = [
            set(s.tables) if isinstance(s, SelectQuery) else {s.table}
            for s in self._stmts
        ]
        self._by_table: dict[str, list[int]] = defaultdict(list)
        for si, tables in enumerate(self._tables):
            for table in tables:
                self._by_table[table].append(si)
        #: first statement index per distinct statement (for the
        #: single-statement API used by candidate selection).
        self._stmt_index: dict = {}
        for si, stmt in enumerate(self._stmts):
            self._stmt_index.setdefault(stmt, si)
        db = whatif.database
        #: per SELECT statement: table -> (predicates, needed columns),
        #: the exact probe inputs ``StatementCoster._cost_select`` uses.
        self._probe_info: list[dict | None] = [
            {
                t: (
                    s.predicates_of_table(db, t),
                    s.columns_of_table(db, t),
                )
                for t in s.tables
            }
            if isinstance(s, SelectQuery) else None
            for s in self._stmts
        ]
        #: per maintenance statement: (table, find-probe SELECT | None) —
        #: the probe is the exact SELECT ``_cost_update``/``_cost_delete``
        #: construct to find the affected rows (None for bulk INSERTs,
        #: which have no find phase).
        self._maint_info: list[tuple | None] = []
        for s in self._stmts:
            if isinstance(s, InsertQuery):
                self._maint_info.append((s.table, None))
            elif isinstance(s, UpdateQuery):
                self._maint_info.append((s.table, SelectQuery(
                    tables=(s.table,),
                    select_columns=tuple(s.set_columns),
                    predicates=s.predicates,
                )))
            elif isinstance(s, DeleteQuery):
                self._maint_info.append((s.table, SelectQuery(
                    tables=(s.table,), predicates=s.predicates,
                )))
            else:
                self._maint_info.append(None)
        # Probe info for the find-probe SELECTs, so ``_table_plan`` can
        # replay their plan search with the optimizer's own inputs.
        for si, info in enumerate(self._maint_info):
            if info is None or info[1] is None:
                continue
            table, probe = info
            self._probe_info[si] = {
                table: (
                    probe.predicates_of_table(db, table),
                    probe.columns_of_table(db, table),
                )
            }

        # Reference state: per-statement signatures / weighted terms /
        # raw totals / chosen per-table plan costs / chosen plans for
        # the reference configuration.
        self._ref_config: Configuration | None = None
        self._ref_sigs: list[frozenset] = []
        self._ref_terms: list[float] = []
        self._ref_totals: list[float] = []
        self._ref_plans: list[tuple[float, ...] | None] = []
        self._ref_full_plans: list[tuple | None] = []
        self._ref_total = 0.0

        #: (si, relevant-subset signature) ->
        #: (term, total, plan_costs, full AccessPlan tuple | None)
        self._memo: dict = {}
        #: (si, table, candidate identity, base identity) ->
        #: AccessPlan (None = unusable plan).
        self._probes: dict = {}
        #: (si, dimension table) -> conjunction selectivity (pure).
        self._dim_sel: dict = {}
        #: (si, table, table-local structure identities) -> AccessPlan.
        self._table_plans: dict = {}
        #: (si, structure identity) -> (io, cpu) maintenance
        #: contribution (pure per run: sizes and stats are fixed).
        self._maint_terms: dict = {}
        #: si -> affected row count of the maintenance statement (pure).
        self._maint_affected: dict[int, float] = {}

        # Bound state (populated by register_universe).
        self._universe: list[IndexDef] | None = None
        self._universe_by_table: dict[str, list[IndexDef]] = {}
        self._universe_sizes: dict | None = None
        self._floors: dict[int, float | None] = {}
        #: live peek-only size resolver (see register_universe) — the
        #: kernel probe batches use it to size whole lane groups
        #: without triggering estimation work.
        self._size_peek: Callable | None = None
        #: (si, table, base identity) groups already batch-probed.
        self._probe_filled: set = set()

        # Hot-path caches.  _ref_bases and _shift_cache depend on the
        # reference configuration and are reset on every rebase;
        # _sig_mv is a pure property of a signature and persists.
        #: table -> (base structure, base identity) under the reference.
        self._ref_bases: dict = {}
        #: (si, added identity) -> shifted signature (single-add case).
        self._shift_cache: dict = {}
        #: signature -> whether it contains an MV identity.
        self._sig_mv: dict = {}

        # Instrumentation.
        self.reused_terms = 0
        self.patched_terms = 0
        self.patched_maintenance = 0
        self.full_recosts = 0
        self.memo_hits = 0
        self.probe_evals = 0
        self.pruned_zero_delta = 0
        self.pruned_bound = 0

    # ------------------------------------------------------------------
    # reference management
    # ------------------------------------------------------------------
    def rebase(self, config: Configuration) -> float:
        """Make ``config`` the reference and return its workload cost
        (bit-identical to :meth:`WhatIfOptimizer.workload_cost`).

        Cheap when ``config`` was just costed: every changed statement's
        term comes out of the memo."""
        if self._ref_config is not None and config == self._ref_config:
            return self._ref_total
        n = len(self._stmts)
        if self._ref_config is None:
            sigs, terms, totals, plans, full = [], [], [], [], []
            for si in range(n):
                sig = self._sig(si, config)
                term, total, pc, fp = self._term_for(si, sig, config)
                sigs.append(sig)
                terms.append(term)
                totals.append(total)
                plans.append(pc)
                full.append(fp)
        else:
            added = config.indexes - self._ref_config.indexes
            removed = self._ref_config.indexes - config.indexes
            sigs = list(self._ref_sigs)
            terms = list(self._ref_terms)
            totals = list(self._ref_totals)
            plans = list(self._ref_plans)
            full = list(self._ref_full_plans)
            for si in self._affected(added | removed):
                sig = self._shifted_sig(si, added, removed)
                term, total, pc, fp = self._term_for(
                    si, sig, config, added=added, removed=removed
                )
                sigs[si] = sig
                terms[si] = term
                totals[si] = total
                plans[si] = pc
                full[si] = fp
        self._ref_config = config
        self._ref_sigs = sigs
        self._ref_terms = terms
        self._ref_totals = totals
        self._ref_plans = plans
        self._ref_full_plans = full
        self._ref_total = sum(terms)
        self._ref_bases = {}
        self._shift_cache = {}
        return self._ref_total

    # ------------------------------------------------------------------
    # costing
    # ------------------------------------------------------------------
    def workload_cost(self, config: Configuration) -> float:
        """Weighted workload cost of ``config``, re-evaluating only the
        statements whose relevant-structure set differs from the
        reference configuration's."""
        if self._ref_config is None:
            return self.rebase(config)
        ref = self._ref_config
        if config == ref:
            return self._ref_total
        added = config.indexes - ref.indexes
        removed = ref.indexes - config.indexes
        term_for = self._term_for
        shifted = self._shifted_sig
        out: list[float] | None = None
        diff = added if not removed else added | removed
        for si in self._affected(diff):
            term = term_for(
                si, shifted(si, added, removed), config, added, removed,
            )[0]
            if out is None:
                out = list(self._ref_terms)
            out[si] = term
        if out is None:
            return self._ref_total
        return sum(out)

    def batch(self, configs: Sequence[Configuration]) -> list[float]:
        """Workload costs of many configurations, in input order."""
        return [self.workload_cost(config) for config in configs]

    def statement_cost(self, statement, config: Configuration) -> float:
        """One statement's (unweighted) optimizer cost under ``config``,
        through the delta memo — the hook candidate selection uses."""
        si = self._stmt_index.get(statement)
        if si is None or self._ref_config is None:
            return self.whatif.cost(statement, config).total
        added = config.indexes - self._ref_config.indexes
        removed = self._ref_config.indexes - config.indexes
        if not any(self._relevant(si, ix) for ix in added) and \
                not any(self._relevant(si, ix) for ix in removed):
            return self._ref_totals[si]
        return self._term_for(
            si,
            self._shifted_sig(si, added, removed),
            config,
            added=added,
            removed=removed,
        )[1]

    # ------------------------------------------------------------------
    # pruning
    # ------------------------------------------------------------------
    def register_universe(
        self,
        universe: Iterable[IndexDef],
        size_if_known: Callable[[IndexDef], "tuple[float, float] | None"],
    ) -> None:
        """Declare every structure an enumeration could ever place in a
        configuration, enabling per-statement lower bounds.

        Args:
            universe: candidate pool plus base structures plus every
                method variant the search phases may introduce.
            size_if_known: resolves an index to ``(est_bytes, est_rows)``
                **only when no new estimation work is needed** — bounds
                must never trigger size estimation, or the delta-on and
                delta-off estimation orders (and therefore their
                deduction plans) could diverge.  Tables with any
                unresolvable universe member get no bound.
        """
        seen: dict = {}
        for ix in universe:
            seen.setdefault(index_identity(ix), ix)
        self._universe = list(seen.values())
        self._universe_by_table = defaultdict(list)
        self._universe_sizes = {}
        for ix in self._universe:
            if not ix.is_mv_index:
                self._universe_by_table[ix.table].append(ix)
            size = size_if_known(ix)
            if size is not None:
                self._universe_sizes[index_identity(ix)] = size
        # Keep the live resolver too: probe batches fill lanes for
        # *currently* peekable structures (the snapshot above stays the
        # floors' source so bounds are stable across a run).  The
        # resolver must agree with the optimizer's own size lookup
        # whenever it resolves — the same contract the floors already
        # rely on for soundness.
        self._size_peek = size_if_known
        self._floors = {}
        self._probe_filled = set()

    def lower_bound(self, si: int) -> float | None:
        """Weighted lower bound on statement ``si``'s term over every
        enumerable configuration (None = no sound bound available)."""
        if self._universe is None:
            return None
        if si not in self._floors:
            self._floors[si] = self._compute_floor(si)
        return self._floors[si]

    def improvement_possible(
        self,
        config: Configuration,
        prune_threshold: float | None = None,
    ) -> bool:
        """Whether costing ``config`` could possibly change the search.

        False means the enumerator may skip the candidate entirely:
        either its total is provably bit-identical to the reference cost
        (zero-delta certificate), or — when the enumerator passes a
        ``prune_threshold`` because its strategy makes it safe — the
        candidate's optimistic improvement over the reference is below
        that threshold."""
        ref = self._ref_config
        if ref is None:
            return True
        added = config.indexes - ref.indexes
        removed = ref.indexes - config.indexes
        if removed:
            return True  # swaps/base replacements: never certified
        affected = self._affected(added)

        certified = True
        for si in affected:
            if not self._is_select[si]:
                certified = False
                break
            if self._ref_plans[si] is None:
                certified = False
                break
            for ix in added:
                if self._relevant(si, ix) and \
                        not self._probe_loses(si, ix):
                    certified = False
                    break
            if not certified:
                break
        if certified:
            self.pruned_zero_delta += 1
            return False

        if prune_threshold is not None:
            cap = 0.0
            for si in affected:
                floor = self.lower_bound(si)
                if floor is None:
                    return True
                cap += self._ref_terms[si] - floor
                if cap >= prune_threshold:
                    return True
            self.pruned_bound += 1
            return False
        return True

    def improvement_cap(self, config: Configuration) -> float | None:
        """Optimistic upper bound on how much ``config`` can improve on
        the reference total (None = no sound cap: no reference or
        universe yet, removals in the diff, or an affected statement
        without a floor).

        The enumerator-side counterpart of the ``prune_threshold`` arm
        of :meth:`improvement_possible`, for strategies that cannot
        prune on the cap alone — the backtracking rescue sweep in
        ``greedy-backtrack`` compares caps across the whole candidate
        sweep before deciding which low-cap candidates were provably
        invisible (and then records them via :meth:`note_bound_pruned`).
        """
        ref = self._ref_config
        if ref is None or self._universe is None:
            return None
        added = config.indexes - ref.indexes
        if ref.indexes - config.indexes:
            return None  # swaps/base replacements: no cap
        cap = 0.0
        for si in self._affected(added):
            floor = self.lower_bound(si)
            if floor is None:
                return None
            cap += self._ref_terms[si] - floor
        return cap

    def note_bound_pruned(self, n: int = 1) -> None:
        """Record ``n`` candidates skipped by enumerator-side bound
        pruning (caps obtained via :meth:`improvement_cap` rather than
        decided inside :meth:`improvement_possible`)."""
        self.pruned_bound += n

    # ------------------------------------------------------------------
    # views & stats
    # ------------------------------------------------------------------
    def fork_view(self) -> "DeltaWorkloadCoster":
        """A fresh, isolated coster over the same workload skeleton.

        Like the persistent caches' :meth:`fork_view`, but the overlay
        starts *empty*: delta memo keys do not embed size estimates, so
        entries are only valid under the estimator state that produced
        them.  Sweep units get this isolation implicitly (each unit's
        advisor constructs its own coster); the explicit method is for
        embedders that keep one coster across runs and need a sibling
        that can never observe its terms."""
        return type(self)(self.whatif, self.workload)

    def stats(self) -> dict:
        return {
            "statements": len(self._stmts),
            "memo_entries": len(self._memo),
            "memo_hits": self.memo_hits,
            "reused_terms": self.reused_terms,
            "patched_terms": self.patched_terms,
            "patched_maintenance": self.patched_maintenance,
            "full_recosts": self.full_recosts,
            "probe_evals": self.probe_evals,
            "probe_entries": len(self._probes),
            "maintenance_entries": len(self._maint_terms),
            "pruned_zero_delta": self.pruned_zero_delta,
            "pruned_bound": self.pruned_bound,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _relevant(self, si: int, index: IndexDef) -> bool:
        """Mirror of ``WhatIfOptimizer._relevant_structures`` for one
        (statement, index) pair."""
        mv = index.mv
        if mv is not None:
            return bool(self._tables[si] & set(mv.tables))
        return index.table in self._tables[si]

    def _sig(self, si: int, config: Configuration) -> frozenset:
        return frozenset(
            index_identity(ix) for ix in config if self._relevant(si, ix)
        )

    def _shifted_sig(self, si: int, added, removed) -> frozenset:
        """The relevant-subset signature after a diff, derived from the
        reference signature without rescanning the configuration."""
        sig = self._ref_sigs[si]
        if not removed and len(added) == 1:
            # The enumeration hot path: config ∪ {candidate}.  Sweeps
            # re-derive the same (statement, candidate) signature many
            # times per reference, so the union is cached per rebase.
            for ix in added:
                ident = (
                    ix.__dict__.get("_identity_cache")
                    or index_identity(ix)
                )
                key = (si, ident)
                out = self._shift_cache.get(key)
                if out is None:
                    out = sig | {ident} if self._relevant(si, ix) else sig
                    self._shift_cache[key] = out
                return out
        drop = {
            index_identity(ix) for ix in removed if self._relevant(si, ix)
        }
        grow = {
            index_identity(ix) for ix in added if self._relevant(si, ix)
        }
        if drop:
            sig = sig - drop
        if grow:
            sig = sig | grow
        return sig

    def _sig_has_mv(self, sig: frozenset) -> bool:
        """Whether a signature contains an MV identity — memoized, as
        the same signatures are re-examined on every sweep."""
        has = self._sig_mv.get(sig)
        if has is None:
            has = any(t[6] is not None for t in sig)
            self._sig_mv[sig] = has
        return has

    def _affected(self, diff: Iterable[IndexDef]) -> list[int]:
        """Statement indices whose relevant set a diff touches, in
        workload order.  Callers must not mutate the result (the
        single-index fast path hands out the interned per-table list)."""
        first = None
        for n, ix in enumerate(diff):
            if n or ix.mv is not None:
                first = None
                break
            first = ix
        if first is not None:
            # Single non-MV diff — the enumeration hot path; _by_table
            # lists are built in ascending statement order.
            return self._by_table.get(first.table, [])
        out: set[int] = set()
        for ix in diff:
            if ix.is_mv_index:
                mv_tables = set(ix.mv.tables)
                for si, tables in enumerate(self._tables):
                    if tables & mv_tables:
                        out.add(si)
            else:
                out.update(self._by_table.get(ix.table, ()))
        return sorted(out)

    def _term_for(
        self,
        si: int,
        sig: frozenset,
        config: Configuration,
        added=None,
        removed=None,
    ) -> tuple:
        """(weighted term, raw total, chosen per-table plan costs,
        chosen plans) of statement ``si`` under ``config`` — memoized,
        probe-reused or plan-patched when provably exact, fully
        recosted otherwise."""
        entry = self._memo.get((si, sig))
        if entry is not None:
            self.memo_hits += 1
            return entry
        entry = None
        if added is not None:
            if self._is_select[si] and self._ref_plans[si] is not None:
                entry = self._delta_entry(si, sig, config, added, removed)
            elif self._maint_info[si] is not None:
                entry = self._maintenance_entry(si, sig, config)
        if entry is None:
            breakdown, plan_costs = self.whatif.cost_with_plans(
                self._stmts[si], config
            )
            term = self._weights[si] * breakdown.total
            entry = (
                term, breakdown.total, plan_costs,
                breakdown.plans or None,
            )
            self.full_recosts += 1
        self._memo[(si, sig)] = entry
        return entry

    def _delta_entry(
        self, si: int, sig: frozenset, config: Configuration,
        added, removed,
    ) -> tuple | None:
        """The exact memo entry for a SELECT under a diffed candidate,
        when the plans decide it without a full recost:

        * reference reuse when every change is invisible (non-matching
          MVs, unusable plans, plans that strictly lose);
        * a plan-patched rebuild otherwise — a purely-added winner's
          probe plan (a strict unique minimum), or, for tables whose
          structure set changed structurally (base swaps, removals,
          ties), the table's plan recomputed by the *real*
          ``_structures_for`` + :func:`best_access_plan`, so ordering
          and tie-breaks are the optimizer's own.

        None means only a full recost is exact (MV substitution in
        scope, or no reference plans to patch)."""
        stmt = self._stmts[si]
        if self._sig_has_mv(sig):
            return None  # MVs in scope: substitution needs a recost
        if not removed and len(added) == 1:
            # Enumeration hot path: config ∪ {one secondary}.  The
            # general loop below reduces exactly to this sequence for a
            # single added non-MV secondary; inlining it skips the
            # per-call container setup the general diff walk needs.
            for ix in added:
                break
            if ix.mv is None and ix.kind is IndexKind.SECONDARY:
                if not self._relevant(si, ix):
                    entry = None  # invisible: reference reuse below
                else:
                    entry = self._probe_cached(si, ix)
                chosen = (
                    None if entry is None
                    else self._chosen_plan_cost(si, ix.table)
                )
                if entry is None or (
                    chosen is not None and entry.cost > chosen
                ):
                    self.reused_terms += 1
                    return (
                        self._ref_terms[si],
                        self._ref_totals[si],
                        self._ref_plans[si],
                        self._ref_full_plans[si],
                    )
                if chosen is not None:
                    full = self._ref_full_plans[si]
                    if full is None:
                        full = self._reconstruct_ref_plans(si)
                        if full is None:
                            return None
                    patched = list(full)
                    ti = stmt.tables.index(ix.table)
                    if entry.cost == chosen:
                        # Tie: the optimizer's first-minimum order
                        # decides — recompute the table's plan search.
                        patched[ti] = self._table_plan(
                            si, ix.table, sig, config
                        )
                    else:
                        patched[ti] = entry
                    total = self._select_total_from_plans(si, patched)
                    term = self._weights[si] * total
                    self.patched_terms += 1
                    return (
                        term, total,
                        tuple(plan.cost for plan in patched),
                        tuple(patched),
                    )
                # chosen is None (defensive): fall through to the
                # general path, which recomputes the table's plan.
        for ix in removed:
            if self._relevant(si, ix) and ix.is_mv_index:
                # Non-matching MVs are invisible; matching ones change
                # the substitution choice.
                if mv_matches_query(ix.mv, stmt):
                    return None
        recompute: set[str] = set()
        winners: dict[str, object] = {}
        removed_tables = {
            ix.table for ix in removed
            if not ix.is_mv_index and self._relevant(si, ix)
        }
        recompute |= removed_tables
        for ix in added:
            if not self._relevant(si, ix):
                continue
            if ix.is_mv_index:
                if mv_matches_query(ix.mv, stmt):
                    return None  # MV substitution: full recost
                continue  # non-matching MV: invisible to this SELECT
            table = ix.table
            if table in recompute:
                continue
            if ix.kind is not IndexKind.SECONDARY:
                recompute.add(table)  # base add: whole plan set shifts
                winners.pop(table, None)
                continue
            plan = self._probe_cached(si, ix)
            if plan is None:
                continue  # unusable plan: invisible
            chosen = self._chosen_plan_cost(si, table)
            if chosen is None:  # pragma: no cover - defensive
                recompute.add(table)
                winners.pop(table, None)
                continue
            if plan.cost > chosen:
                continue  # strict loss: invisible
            if plan.cost == chosen:
                # Tie: the optimizer's first-minimum order decides.
                recompute.add(table)
                winners.pop(table, None)
                continue
            best = winners.get(table)
            if best is None:
                winners[table] = plan
            elif plan.cost < best.cost:
                winners[table] = plan
            else:
                if plan.cost == best.cost:
                    recompute.add(table)  # tied winners: order decides
                    winners.pop(table, None)
        if not recompute and not winners:
            # Every change invisible: the reference floats are the
            # candidate's floats, bit for bit.
            self.reused_terms += 1
            return (
                self._ref_terms[si],
                self._ref_totals[si],
                self._ref_plans[si],
                self._ref_full_plans[si],
            )
        full = self._ref_full_plans[si]
        if full is None:
            # Persistent replay: the reference carries plan costs but
            # not the plans themselves — rebuild them with the real
            # plan search (bit-identical by construction, and verified
            # against the replayed costs before use).
            full = self._reconstruct_ref_plans(si)
            if full is None:
                return None
        patched = list(full)
        for table, plan in winners.items():
            patched[stmt.tables.index(table)] = plan
        for table in recompute:
            patched[stmt.tables.index(table)] = self._table_plan(
                si, table, sig, config
            )
        total = self._select_total_from_plans(si, patched)
        term = self._weights[si] * total
        self.patched_terms += 1
        return (
            term, total,
            tuple(plan.cost for plan in patched),
            tuple(patched),
        )

    def _maintenance_entry(
        self, si: int, sig: frozenset, config: Configuration
    ) -> tuple | None:
        """The exact memo entry for a maintenance statement (INSERT /
        UPDATE / DELETE) under any configuration, rebuilt from memoized
        per-structure contributions.

        ``_maintenance_cost`` accumulates with :func:`math.fsum`, whose
        exactly-rounded total is independent of structure order — so
        summing the identical per-structure floats here (each computed
        by the *same* ``structure_maintenance`` code the full path runs)
        reproduces the full path's maintenance breakdown bit for bit.
        UPDATE/DELETE find-probes replay ``_cost_select``'s single-table
        arithmetic from the optimizer's own plan search (memoized per
        table-local structure subset).  None falls back to a full recost
        (an MV in scope could change the probe's substitution choice)."""
        table, probe = self._maint_info[si]
        if probe is not None and self._sig_has_mv(sig):
            return None  # MV in scope: the find-probe could substitute
        coster = self.whatif.coster
        affected = self._affected_rows(si)
        io_terms: list[float] = []
        cpu_terms: list[float] = []
        for ix in coster.maintenance_structures(table, config):
            key = (si, index_identity(ix))
            contrib = self._maint_terms.get(key)
            if contrib is None:
                contrib = coster.structure_maintenance(table, affected, ix)
                self._maint_terms[key] = contrib
            io_terms.append(contrib[0])
            cpu_terms.append(contrib[1])
        io = math.fsum(io_terms)
        cpu = math.fsum(cpu_terms)
        total = io + cpu
        if probe is not None:
            # _cost_update/_cost_delete: total = find.total +
            # maintain.total, find.total = plan.io + plan.cpu (single
            # table, no joins/groups/sort on the probe).
            plan = self._table_plan(si, table, sig, config)
            total = (plan.io_cost + plan.cpu_cost) + total
        term = self._weights[si] * total
        self.patched_maintenance += 1
        return (term, total, None, None)

    def _affected_rows(self, si: int) -> float:
        """Affected row count of maintenance statement ``si`` — the
        identical expression ``_cost_insert``/``_cost_update``/
        ``_cost_delete`` evaluate, memoized (it is a pure function of
        the statement and the table statistics)."""
        affected = self._maint_affected.get(si)
        if affected is None:
            stmt = self._stmts[si]
            if isinstance(stmt, InsertQuery):
                affected = float(stmt.n_rows)
            else:
                stats = self.whatif.stats.table(stmt.table)
                affected = stats.n_rows * conjunction_selectivity(
                    stats, stmt.predicates
                )
            self._maint_affected[si] = affected
        return affected

    def _reconstruct_ref_plans(self, si: int) -> tuple | None:
        """Chosen per-table plans of the reference statement costing,
        recomputed with the optimizer's own plan search when the
        reference breakdown was a persistent replay (which persists the
        plan costs, not the plans).  The recomputed costs must equal the
        replayed ones bit-for-bit — a mismatch (changed cost model vs. a
        stale record, which the context fingerprint should preclude)
        falls back to full recosting rather than risk a wrong patch."""
        plan_costs = self._ref_plans[si]
        if plan_costs is None:
            return None
        stmt = self._stmts[si]
        sig = self._ref_sigs[si]
        plans = tuple(
            self._table_plan(si, table, sig, self._ref_config)
            for table in stmt.tables
        )
        if tuple(plan.cost for plan in plans) != plan_costs:
            return None  # pragma: no cover - defensive
        self._ref_full_plans[si] = plans
        return plans

    def _table_plan(self, si: int, table: str, sig: frozenset,
                    config: Configuration):
        """The optimizer's own chosen plan for one table under
        ``config`` — the exact ``_cost_select`` plan search, structure
        ordering and tie-breaking included; memoized on the table-local
        identity subset (a plan only sees its own table's structures)."""
        key = (
            si, table,
            frozenset(
                t for t in sig if t[0] == table and t[6] is None
            ),
        )
        plan = self._table_plans.get(key)
        if plan is not None:
            return plan
        coster = self.whatif.coster
        preds, needed = self._probe_info[si][table]
        plan = best_access_plan(
            self.whatif.database,
            self.whatif.stats.table(table),
            table,
            coster._structures_for(table, config),
            preds,
            needed,
            coster.constants,
            kernel=coster.kernel,
            shape_key=(si, table),
        )
        self._table_plans[key] = plan
        return plan

    def _select_total_from_plans(self, si: int, plans: list) -> float:
        """``_cost_select``'s total rebuilt from already-chosen per-table
        plans: the identical arithmetic in the identical order, minus
        the per-structure plan search (only valid with no MV in scope).
        """
        stmt = self._stmts[si]
        constants = self.whatif.coster.constants
        io = cpu = 0.0
        fact = stmt.root_table
        fact_rows_out = None
        dim_sel_product = 1.0
        for table, plan in zip(stmt.tables, plans):
            io += plan.io_cost
            cpu += plan.cpu_cost
            if table == fact:
                fact_rows_out = plan.rows_out
            else:
                dim_sel_product *= self._dim_selectivity(si, table)
        if fact_rows_out is None:  # pragma: no cover - defensive
            fact_rows_out = 0.0
        join_rows = fact_rows_out * dim_sel_product
        if len(stmt.tables) > 1:
            cpu += fact_rows_out * len(stmt.joins) * constants.cpu_join_probe
            for plan in plans[1:]:
                cpu += plan.rows_out * constants.cpu_tuple
        if stmt.group_by or stmt.aggregates:
            cpu += join_rows * constants.cpu_group
        if stmt.order_by and not self._order_satisfied(stmt, plans[0]):
            out_rows = max(2.0, join_rows)
            cpu += out_rows * math.log2(out_rows) * constants.cpu_sort_factor
        return io + cpu

    @staticmethod
    def _order_satisfied(stmt: SelectQuery, fact_plan) -> bool:
        index = fact_plan.index
        if index is None or len(stmt.tables) > 1:
            return False
        k = len(stmt.order_by)
        return index.key_columns[:k] == tuple(stmt.order_by)

    def _dim_selectivity(self, si: int, table: str) -> float:
        sel = self._dim_sel.get((si, table))
        if sel is None:
            preds, _needed = self._probe_info[si][table]
            sel = conjunction_selectivity(
                self.whatif.stats.table(table), preds
            )
            self._dim_sel[(si, table)] = sel
        return sel

    def _chosen_plan_cost(self, si: int, table: str) -> float | None:
        plans = self._ref_plans[si]
        try:
            return plans[self._stmts[si].tables.index(table)]
        except (ValueError, IndexError):  # pragma: no cover - defensive
            return None

    def _probe_cached(self, si: int, ix: IndexDef):
        """The candidate's access plan against the reference base of
        its table (cached; None = unusable)."""
        table = ix.table
        cached_base = self._ref_bases.get(table)
        if cached_base is None:
            base = self._ref_config.base_structure(table)
            if base is None:  # pragma: no cover - bases always tracked
                return None
            cached_base = (base, index_identity(base))
            self._ref_bases[table] = cached_base
        base, base_id = cached_base
        ident = ix.__dict__.get("_identity_cache") or index_identity(ix)
        key = (si, table, ident, base_id)
        plan = self._probes.get(key, _UNPROBED)
        if plan is _UNPROBED:
            self._fill_probe_group(table, base, base_id)
            plan = self._probes.get(key, _UNPROBED)
            if plan is _UNPROBED:
                plan = self._probe(si, table, ix, base)
                self._probes[key] = plan
        return plan

    def _fill_probe_group(
        self, table: str, base: IndexDef, base_id: tuple
    ) -> None:
        """Kernel-batch the probes of every universe secondary on
        ``table`` whose size is already peekable, across **every**
        SELECT statement touching the table, on the first probe miss
        against this base.  Sweeps probe all affected statements for
        each candidate, so the whole group is demanded work — batching
        it turns thousands of scalar :func:`cost_access` calls into a
        few flat kernel evaluations.

        Sizing is strictly peek-only (``size_if_known``): a lane is
        only filled when no new estimation work is needed, so the
        delta-on estimation order stays identical to the full-recost
        path — structures the peek cannot resolve fall back to the
        scalar :meth:`_probe` (sized via the optimizer's own lookup) at
        the moment they are actually requested, exactly as before.
        Each filled lane is the same :func:`cost_access` arithmetic
        (shape + kernel evaluation) and lands in the same probe cache,
        so probe decisions are bit-identical to the unbatched path."""
        group = (table, base_id)
        if group in self._probe_filled:
            return
        self._probe_filled.add(group)
        kernel = getattr(self.whatif, "kernel", None)
        if kernel is None or self._universe is None or \
                self._size_peek is None:
            return
        whatif = self.whatif
        stats = whatif.stats.table(table)
        constants = whatif.coster.constants
        secondaries = [
            (cand, index_identity(cand), self._size_peek(cand))
            for cand in self._universe_by_table.get(table, [])
            if cand.kind is IndexKind.SECONDARY
        ]
        lanes: list = []
        keys: list = []
        for sj in self._by_table.get(table, ()):
            if not self._is_select[sj]:
                continue
            info = self._probe_info[sj]
            if info is None or table not in info:
                continue
            preds, needed = info[table]
            for cand, cand_id, size in secondaries:
                if size is None:
                    continue
                ckey = (sj, table, cand_id, base_id)
                if ckey in self._probes:
                    continue
                self.probe_evals += 1
                shape = kernel.shape_for(
                    (sj, table), cand, preds, needed, stats, constants
                )
                if shape is None:
                    self._probes[ckey] = None
                    continue
                lanes.append((cand, size[0], size[1], shape))
                keys.append(ckey)
        if not lanes:
            return
        base_bytes, _base_rows = whatif._sizes(base)
        plans = kernel.batch_access_plans(
            lanes, constants, (base, base_bytes)
        )
        for ckey, plan in zip(keys, plans):
            self._probes[ckey] = plan

    def _probe_loses(self, si: int, ix: IndexDef) -> bool:
        """True iff adding ``ix`` provably cannot change statement
        ``si``'s cost: a non-matching MV, an unusable plan, or an access
        plan that strictly loses to the chosen plan on its table."""
        stmt = self._stmts[si]
        if ix.is_mv_index:
            # Non-matching MVs are skipped by both the access-path and
            # the MV-substitution scans; matching ones need a recost.
            return not mv_matches_query(ix.mv, stmt)
        if ix.kind is not IndexKind.SECONDARY:
            return False  # base adds surface as removed+added upstream
        plan = self._probe_cached(si, ix)
        if plan is None:
            return True
        chosen = self._chosen_plan_cost(si, ix.table)
        if chosen is None:
            return False
        return plan.cost > chosen

    def _probe(self, si: int, table: str, ix: IndexDef, base: IndexDef):
        """One :func:`cost_access` evaluation with exactly the inputs
        ``StatementCoster._structures_for`` would feed it (through the
        kernel's shape cache when one is wired — same floats either
        way by the shape/eval split)."""
        self.probe_evals += 1
        preds, needed = self._probe_info[si][table]
        whatif = self.whatif
        ix_bytes, ix_rows = whatif._sizes(ix)
        base_bytes, _base_rows = whatif._sizes(base)
        kernel = getattr(whatif, "kernel", None)
        if kernel is not None:
            shape = kernel.shape_for(
                (si, table), ix, preds, needed,
                whatif.stats.table(table), whatif.coster.constants,
            )
            if shape is None:
                return None
            return plan_from_shape(
                ix, ix_bytes, ix_rows, shape, whatif.coster.constants,
                (base, base_bytes),
            )
        return cost_access(
            ix, ix_bytes, ix_rows, preds, needed,
            whatif.stats.table(table), whatif.coster.constants,
            base_lookup=(base, base_bytes),
        )

    # ------------------------------------------------------------------
    # lower bounds (the atomic-configuration floor)
    # ------------------------------------------------------------------
    def _universe_size(self, ix: IndexDef) -> "tuple[float, float] | None":
        return self._universe_sizes.get(index_identity(ix))

    def _table_plan_floor(
        self, si: int, table: str
    ) -> "tuple[float, float] | None":
        """(min plan cost, min rows_out) over every structure x base
        pairing the universe allows on ``table`` — None when any
        universe member's size is unknown (an unsound bound otherwise).

        The base structure only enters a plan through the non-covering
        lookup's decompression term, which is zero for an uncompressed
        base and nonnegative otherwise — so costing every structure once
        against an uncompressed base lower-bounds every real pairing
        without enumerating them."""
        structures = self._universe_by_table.get(table, [])
        bases = [
            ix for ix in structures
            if ix.kind in (IndexKind.HEAP, IndexKind.CLUSTERED)
        ]
        floor_base = next(
            (ix for ix in bases if not ix.method.is_compressed), None
        )
        if floor_base is None:
            return None
        base_size = self._universe_size(floor_base)
        if base_size is None:
            return None
        preds, needed = self._probe_info[si][table]
        stats = self.whatif.stats.table(table)
        constants = self.whatif.coster.constants
        best_cost = None
        best_rows = None
        for ix in structures:
            size = self._universe_size(ix)
            if size is None:
                return None
            plan = cost_access(
                ix, size[0], size[1], preds, needed, stats,
                constants, base_lookup=(floor_base, base_size[0]),
            )
            if plan is None:
                continue
            if best_cost is None or plan.cost < best_cost:
                best_cost = plan.cost
            if best_rows is None or plan.rows_out < best_rows:
                best_rows = plan.rows_out
        if best_cost is None:
            return None
        return best_cost, best_rows

    def _select_floor(self, si: int, stmt: SelectQuery) -> float | None:
        """Lower bound on a SELECT's total over every enumerable
        configuration: per-table minimum access plans, optimistic
        join/group terms, zero sort, best matching MV."""
        constants = self.whatif.coster.constants
        total = 0.0
        fact_rows = None
        dim_rows_terms = 0.0
        dim_sel_product = 1.0
        for table in stmt.tables:
            floor = self._table_plan_floor(si, table)
            if floor is None:
                return None
            total += floor[0]
            if table == stmt.root_table:
                fact_rows = floor[1]
            else:
                preds, _needed = self._probe_info[si][table]
                dim_sel_product *= conjunction_selectivity(
                    self.whatif.stats.table(table), preds
                )
                dim_rows_terms += floor[1] * constants.cpu_tuple
        if fact_rows is None:  # pragma: no cover - defensive
            fact_rows = 0.0
        if len(stmt.tables) > 1:
            total += fact_rows * len(stmt.joins) * constants.cpu_join_probe
            total += dim_rows_terms
        if stmt.group_by or stmt.aggregates:
            total += fact_rows * dim_sel_product * constants.cpu_group
        if stmt.order_by and not self._order_satisfiable(stmt):
            # No enumerable plan can satisfy the ordering, so every
            # configuration pays the sort.  join_rows >= the floor's
            # fact_rows * dim_sel_product and x·log2(x) over max(2, x)
            # is nondecreasing, so this term lower-bounds the real one.
            out_rows = max(2.0, fact_rows * dim_sel_product)
            total += out_rows * math.log2(out_rows) * constants.cpu_sort_factor
        mv_floor = self._mv_floor(stmt)
        if mv_floor is not None and mv_floor < total:
            total = mv_floor
        return total

    def _order_satisfiable(self, stmt: SelectQuery) -> bool:
        """Whether *any* enumerable plan could satisfy the statement's
        ORDER BY (mirrors ``_order_satisfied`` quantified over the
        registered universe).  Multi-table plans never satisfy it; a
        single-table plan needs a universe structure whose key prefix
        is exactly the ordering."""
        if len(stmt.tables) > 1:
            return False
        k = len(stmt.order_by)
        order = tuple(stmt.order_by)
        return any(
            ix.key_columns[:k] == order
            for ix in self._universe_by_table.get(stmt.tables[0], [])
        )

    def _mv_floor(self, stmt: SelectQuery) -> float | None:
        """Cheapest matching MV substitution available in the universe
        (exact per-MV arithmetic, mirroring ``_try_mv_plan``)."""
        constants = self.whatif.coster.constants
        best = None
        for ix in self._universe or ():
            if not ix.is_mv_index or not mv_matches_query(ix.mv, stmt):
                continue
            size = self._universe_size(ix)
            if size is None:
                return 0.0  # unknown MV size: only zero stays sound
            size_bytes, rows = size
            pages = max(1.0, size_bytes / PAGE_SIZE)
            cost = pages * constants.io_seq_page + rows * constants.cpu_tuple
            if ix.method.is_compressed:
                n_cols = max(
                    1, len(ix.mv.group_by) + len(ix.mv.aggregates)
                )
                cost += constants.decompress_cpu(ix.method, rows, n_cols)
            if best is None or cost < best:
                best = cost
        return best

    def _maintenance_floor(self, table: str, affected: float) -> float | None:
        """Lower bound on maintenance cost: the cheapest possible base
        structure alone (secondary/MV terms are nonnegative)."""
        constants = self.whatif.coster.constants
        bases = [
            ix for ix in self._universe_by_table.get(table, [])
            if ix.kind in (IndexKind.HEAP, IndexKind.CLUSTERED)
        ]
        if not bases:
            return None
        best = None
        for base in bases:
            size = self._universe_size(base)
            if size is None:
                return None
            size_bytes, rows = size
            rows_total = max(rows, 1.0)
            io = (
                affected * (size_bytes / rows_total) / PAGE_SIZE
                * constants.io_seq_page
            )
            cpu = affected * constants.cpu_insert_per_index
            cpu += constants.compress_cpu(base.method, affected)
            if best is None or io + cpu < best:
                best = io + cpu
        return best

    def _compute_floor(self, si: int) -> float | None:
        stmt = self._stmts[si]
        weight = self._weights[si]
        if isinstance(stmt, SelectQuery):
            floor = self._select_floor(si, stmt)
            return None if floor is None else weight * floor
        stats = self.whatif.stats.table(stmt.table)
        if isinstance(stmt, InsertQuery):
            find = 0.0
            affected = float(stmt.n_rows)
        elif isinstance(stmt, (UpdateQuery, DeleteQuery)):
            # The find part is a SELECT probe on the same table; its
            # floor needs per-table probe info this statement does not
            # carry, so stay conservative: zero find cost.
            find = 0.0
            affected = stats.n_rows * conjunction_selectivity(
                stats, stmt.predicates
            )
        else:  # pragma: no cover - unknown statement kinds
            return None
        maintain = self._maintenance_floor(stmt.table, affected)
        if maintain is None:
            return None
        return weight * (find + maintain)
