"""What-if optimizer with the compression-aware cost model."""

from repro.optimizer.access_paths import AccessPlan, best_access_plan, cost_access
from repro.optimizer.constants import DEFAULT_COST_CONSTANTS, CostConstants
from repro.optimizer.statement_cost import (
    CostBreakdown,
    StatementCoster,
    mv_matches_query,
)
from repro.optimizer.delta import DeltaWorkloadCoster
from repro.optimizer.whatif import WhatIfOptimizer

__all__ = [
    "DeltaWorkloadCoster",
    "CostConstants",
    "DEFAULT_COST_CONSTANTS",
    "AccessPlan",
    "cost_access",
    "best_access_plan",
    "CostBreakdown",
    "StatementCoster",
    "mv_matches_query",
    "WhatIfOptimizer",
]
