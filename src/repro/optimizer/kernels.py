"""Array-based costing kernels.

The advisor's hot path evaluates the same access-path arithmetic over
whole candidate sets: every sweep re-costs every per-table structure
against a fixed predicate context.  The discrete part of that work
(predicate subsumption, prefix selectivity, covering checks) is hoisted
into :class:`~repro.optimizer.access_paths.AccessShape`; what remains
per structure is a short, branch-light float expression.  This module
evaluates those expressions over *batches* of structures ("lanes") in
flat numeric loops, with two interchangeable backends:

``python``
    A scalar loop over
    :func:`~repro.optimizer.access_paths.plan_from_shape` — always
    available, and the identity reference.

``numpy``
    The same expression tree evaluated element-wise over float64
    arrays.  Every operation mirrors the scalar code operation for
    operation (same order, same ``max``/branch structure via
    ``np.maximum``/``np.where``), and the expressions contain only
    IEEE-754 basic operations (+, *, /, min/max) — no transcendentals,
    no reductions — so each lane's result is **bit-identical** to the
    scalar path.  That is the kernel identity contract: backends may
    differ in speed, never in a single float.

Backend selection (``AdvisorOptions.kernel`` / ``repro tune
--kernel``): ``auto`` picks numpy when importable, ``python`` forces
the fallback, ``numpy`` demands the import and fails loudly otherwise.
Setting ``REPRO_DISABLE_NUMPY=1`` makes numpy invisible to ``auto``
(used by the CI numpy-absent leg and the property tests).
"""

from __future__ import annotations

import os

from repro.errors import OptimizerError
from repro.optimizer.access_paths import (
    AccessPlan,
    access_shape,
    plan_from_shape,
)
from repro.parallel.signature import index_identity
from repro.storage.page import PAGE_SIZE

#: Below this many lanes the per-call numpy overhead (array building,
#: ufunc dispatch) exceeds the loop it replaces, so even the numpy
#: backend uses the scalar loop.  Deterministic: depends only on the
#: batch size, and by the identity contract the results are the same
#: either way.
NUMPY_MIN_LANES = 32

KERNEL_BACKENDS = ("auto", "numpy", "python")

#: sentinel distinguishing "shape not yet computed" from "unusable".
_UNSHAPED = object()


def numpy_module():
    """The numpy module, or None when unavailable (not importable, or
    hidden via ``REPRO_DISABLE_NUMPY=1``)."""
    if os.environ.get("REPRO_DISABLE_NUMPY") == "1":
        return None
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def resolve_backend(name: str = "auto"):
    """Resolve a backend name to a :class:`CostKernel`.

    Args:
        name: ``auto`` (numpy if importable, else python), ``numpy``
            (required — raises if unavailable), or ``python``.
    """
    if name not in KERNEL_BACKENDS:
        raise OptimizerError(
            f"unknown kernel backend {name!r} "
            f"(choose from {', '.join(KERNEL_BACKENDS)})"
        )
    if name == "python":
        return CostKernel("python", None)
    np = numpy_module()
    if np is None:
        if name == "numpy":
            raise OptimizerError(
                "kernel backend 'numpy' requested but numpy is not "
                "available (not installed, or REPRO_DISABLE_NUMPY=1)"
            )
        return CostKernel("python", None)
    return CostKernel("numpy", np)


class CostKernel:
    """Batch evaluator for shaped access-path lanes.

    A *lane* is ``(index, index_bytes, rows_in_structure, shape)`` —
    one structure with its sizes and its precomputed
    :class:`~repro.optimizer.access_paths.AccessShape`.  The kernel
    returns one :class:`~repro.optimizer.access_paths.AccessPlan` (or
    None for a non-covering lane without a base lookup) per lane, in
    lane order.

    Instrumentation counters (``lanes_total``, ``batches_numpy``,
    ``batches_scalar``) feed the bench metadata.
    """

    def __init__(self, backend: str, np) -> None:
        self.backend = backend
        self._np = np
        self.lanes_total = 0
        self.batches_numpy = 0
        self.batches_scalar = 0
        #: (shape_key, index identity) -> AccessShape | None.  Shapes
        #: are pure functions of (structure, predicate context) and a
        #: run's stats/constants never change, so one entry serves
        #: every sweep of the run.
        self._shapes: dict = {}

    def stats(self) -> dict:
        return {
            "backend": self.backend,
            "lanes_total": self.lanes_total,
            "batches_numpy": self.batches_numpy,
            "batches_scalar": self.batches_scalar,
            "shape_entries": len(self._shapes),
        }

    def shape_for(
        self, shape_key, index, predicates, needed_columns, stats,
        constants,
    ):
        """Memoized :func:`~repro.optimizer.access_paths.access_shape`.

        ``shape_key`` names the fixed predicate context (statement,
        table); pass None to bypass the cache."""
        if shape_key is None:
            return access_shape(
                index, predicates, needed_columns, stats, constants
            )
        key = (shape_key, index_identity(index))
        shape = self._shapes.get(key, _UNSHAPED)
        if shape is _UNSHAPED:
            shape = access_shape(
                index, predicates, needed_columns, stats, constants
            )
            self._shapes[key] = shape
        return shape

    def batch_access_plans(self, lanes: list, constants, base_lookup) -> list:
        """Evaluate every lane; aligned list of AccessPlan | None."""
        self.lanes_total += len(lanes)
        if self._np is None or len(lanes) < NUMPY_MIN_LANES:
            self.batches_scalar += 1
            return [
                plan_from_shape(
                    index, index_bytes, rows, shape, constants,
                    base_lookup,
                )
                for index, index_bytes, rows, shape in lanes
            ]
        self.batches_numpy += 1
        return self._numpy_batch(lanes, constants, base_lookup)

    def _numpy_batch(self, lanes, constants, base_lookup):
        # Mirrors plan_from_shape() operation for operation.  Both
        # np.where() arms are computed for every lane; since every
        # expression is an element-wise IEEE basic operation this only
        # costs cycles, never changes the selected arm's bits.
        np = self._np
        n = len(lanes)
        index_bytes = np.empty(n, dtype=np.float64)
        rows_in = np.empty(n, dtype=np.float64)
        sel_prefix = np.empty(n, dtype=np.float64)
        residual = np.empty(n, dtype=np.float64)
        sel_all = np.empty(n, dtype=np.float64)
        beta = np.empty(n, dtype=np.float64)
        n_used = np.empty(n, dtype=np.float64)
        n_needed = np.empty(n, dtype=np.float64)
        can_seek = np.empty(n, dtype=bool)
        covering = np.empty(n, dtype=bool)
        compressed = np.empty(n, dtype=bool)
        for i, (_index, size_bytes, rows, shape) in enumerate(lanes):
            index_bytes[i] = size_bytes
            rows_in[i] = rows
            sel_prefix[i] = shape.sel_prefix
            residual[i] = shape.residual
            sel_all[i] = shape.sel_all
            beta[i] = shape.beta
            n_used[i] = shape.n_used_cols
            n_needed[i] = shape.n_needed
            can_seek[i] = shape.can_seek
            covering[i] = shape.covering
            compressed[i] = shape.compressed

        pages = np.maximum(1.0, index_bytes / PAGE_SIZE)
        pages_read = np.maximum(1.0, pages * sel_prefix)
        rows_read = np.where(can_seek, rows_in * sel_prefix, rows_in)
        io = np.where(
            can_seek,
            pages_read * constants.io_seq_page
            + 2 * constants.io_random_page,
            pages * constants.io_seq_page,
        )
        cpu = rows_read * constants.cpu_tuple
        cpu = cpu + (rows_read * residual) * constants.cpu_predicate
        cpu = np.where(
            compressed, cpu + (beta * rows_read) * n_used, cpu
        )
        rows_out = rows_in * sel_all

        needs_base = ~covering
        if base_lookup is not None:
            base_index, _base_bytes = base_lookup
            lookups = rows_out
            lookup_io = lookups * constants.io_random_page
            lookup_cpu = lookups * constants.cpu_tuple
            if base_index.method.is_compressed:
                base_beta = constants.beta[base_index.method]
                lookup_cpu = lookup_cpu + (
                    (base_beta * lookups) * n_needed
                )
            io = np.where(needs_base, io + lookup_io, io)
            cpu = np.where(needs_base, cpu + lookup_cpu, cpu)
        cost = io + cpu

        plans: list = []
        for i, (index, _size_bytes, _rows, shape) in enumerate(lanes):
            if needs_base[i] and base_lookup is None:
                plans.append(None)
                continue
            plans.append(
                AccessPlan(
                    index=index,
                    cost=float(cost[i]),
                    io_cost=float(io[i]),
                    cpu_cost=float(cpu[i]),
                    rows_out=float(rows_out[i]),
                    used_seek=shape.can_seek,
                )
            )
        return plans
