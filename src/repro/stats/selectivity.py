"""Predicate selectivity estimation from column statistics.

Shared by the what-if optimizer (cardinality estimation) and the size
estimation framework (row counts of partial indexes).  Conjunctions use
the independence assumption, as mainstream optimizers do.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import StatisticsError
from repro.stats.column_stats import TableStats
from repro.workload.expr import (
    Between,
    Comparison,
    Conjunction,
    InList,
    Predicate,
)


def predicate_selectivity(stats: TableStats, predicate: Predicate) -> float:
    """Estimated fraction of rows satisfying ``predicate``."""
    if isinstance(predicate, Conjunction):
        return conjunction_selectivity(stats, predicate.predicates)
    if isinstance(predicate, Comparison):
        return _comparison_selectivity(stats, predicate)
    if isinstance(predicate, Between):
        col = stats.column(predicate.column)
        return col.histogram.selectivity_range(predicate.lo, predicate.hi)
    if isinstance(predicate, InList):
        col = stats.column(predicate.column)
        sel = sum(col.histogram.selectivity_eq(v) for v in predicate.values)
        return min(1.0, sel)
    raise StatisticsError(f"cannot estimate selectivity of {predicate!r}")


def _comparison_selectivity(stats: TableStats, pred: Comparison) -> float:
    col = stats.column(pred.column)
    hist = col.histogram
    if pred.op == "=":
        return hist.selectivity_eq(pred.value)
    if pred.op == "!=":
        return max(0.0, 1.0 - hist.selectivity_eq(pred.value))
    if pred.op == "<":
        return hist.selectivity_range(None, pred.value, hi_inclusive=False)
    if pred.op == "<=":
        return hist.selectivity_range(None, pred.value)
    if pred.op == ">":
        return hist.selectivity_range(pred.value, None, lo_inclusive=False)
    return hist.selectivity_range(pred.value, None)


def conjunction_selectivity(
    stats: TableStats, predicates: Iterable[Predicate]
) -> float:
    """Independence-assumption product over a conjunction."""
    sel = 1.0
    for p in predicates:
        sel *= predicate_selectivity(stats, p)
    return sel
