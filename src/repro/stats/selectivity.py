"""Predicate selectivity estimation from column statistics.

Shared by the what-if optimizer (cardinality estimation) and the size
estimation framework (row counts of partial indexes).  Conjunctions use
the independence assumption, as mainstream optimizers do.

Selectivities are pure functions of ``(table statistics, predicate)``,
yet the access-path search re-evaluates the same handful of predicates
millions of times over an enumeration (every ``cost_access`` probe walks
its predicate list against the histograms).  Both entry points therefore
memoize per :class:`TableStats` instance — a memo hit replays the
*identical float* the first evaluation produced, so costs are
bit-identical with memoization on or off (the equivalence the stats
tests assert).  :func:`set_selectivity_memo` disables the memo globally
for A/B verification; :func:`selectivity_memo_stats` exposes hit/miss
counters.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import StatisticsError
from repro.stats.column_stats import TableStats
from repro.workload.expr import (
    Between,
    Comparison,
    Conjunction,
    InList,
    Predicate,
)

#: global memo switch; flipping it never changes any result, only
#: whether the pure recomputation is skipped.
_MEMO_ENABLED = True
_HITS = 0
_MISSES = 0

#: per-table memo size cap.  Advisor workloads carry a bounded
#: predicate set, but long-lived embedders (the tuning service costs
#: client-supplied SQL) would otherwise grow the memos without bound —
#: past the cap, selectivities are still computed, just not stored
#: (results are identical either way).
MEMO_LIMIT = 1 << 16


def set_selectivity_memo(enabled: bool) -> None:
    """Enable/disable selectivity memoization globally (results are
    identical either way; the switch exists so equivalence tests can
    prove exactly that)."""
    global _MEMO_ENABLED
    _MEMO_ENABLED = bool(enabled)


def selectivity_memo_enabled() -> bool:
    return _MEMO_ENABLED


def selectivity_memo_stats() -> dict:
    """Global memo counters (both entry points combined)."""
    return {
        "enabled": _MEMO_ENABLED,
        "hits": _HITS,
        "misses": _MISSES,
        "hit_rate": _HITS / (_HITS + _MISSES) if (_HITS + _MISSES) else 0.0,
    }


def reset_selectivity_memo_stats() -> None:
    global _HITS, _MISSES
    _HITS = _MISSES = 0


def predicate_selectivity(stats: TableStats, predicate: Predicate) -> float:
    """Estimated fraction of rows satisfying ``predicate`` (memoized
    per-:class:`TableStats`; a hit replays the identical float)."""
    global _HITS, _MISSES
    if not _MEMO_ENABLED:
        return _predicate_selectivity(stats, predicate)
    memo = stats.selectivity_memo
    try:
        value = memo.get(predicate)
    except TypeError:  # unhashable literal: compute directly
        return _predicate_selectivity(stats, predicate)
    if value is None:
        _MISSES += 1
        value = _predicate_selectivity(stats, predicate)
        if len(memo) < MEMO_LIMIT:
            memo[predicate] = value
    else:
        _HITS += 1
    return value


def _predicate_selectivity(stats: TableStats, predicate: Predicate) -> float:
    if isinstance(predicate, Conjunction):
        return conjunction_selectivity(stats, predicate.predicates)
    if isinstance(predicate, Comparison):
        return _comparison_selectivity(stats, predicate)
    if isinstance(predicate, Between):
        col = stats.column(predicate.column)
        return col.histogram.selectivity_range(predicate.lo, predicate.hi)
    if isinstance(predicate, InList):
        col = stats.column(predicate.column)
        sel = sum(col.histogram.selectivity_eq(v) for v in predicate.values)
        return min(1.0, sel)
    raise StatisticsError(f"cannot estimate selectivity of {predicate!r}")


def _comparison_selectivity(stats: TableStats, pred: Comparison) -> float:
    col = stats.column(pred.column)
    hist = col.histogram
    if pred.op == "=":
        return hist.selectivity_eq(pred.value)
    if pred.op == "!=":
        return max(0.0, 1.0 - hist.selectivity_eq(pred.value))
    if pred.op == "<":
        return hist.selectivity_range(None, pred.value, hi_inclusive=False)
    if pred.op == "<=":
        return hist.selectivity_range(None, pred.value)
    if pred.op == ">":
        return hist.selectivity_range(pred.value, None, lo_inclusive=False)
    return hist.selectivity_range(pred.value, None)


def conjunction_selectivity(
    stats: TableStats, predicates: Iterable[Predicate]
) -> float:
    """Independence-assumption product over a conjunction (memoized on
    the predicate tuple; the product loop runs once per distinct
    conjunction, so the replayed float carries the identical
    left-to-right multiplication order)."""
    global _HITS, _MISSES
    if _MEMO_ENABLED and isinstance(predicates, tuple):
        memo = stats.conjunction_memo
        try:
            value = memo.get(predicates)
        except TypeError:  # unhashable literal: compute directly
            return _conjunction_selectivity(stats, predicates)
        if value is None:
            _MISSES += 1
            value = _conjunction_selectivity(stats, predicates)
            if len(memo) < MEMO_LIMIT:
                memo[predicates] = value
        else:
            _HITS += 1
        return value
    return _conjunction_selectivity(stats, predicates)


def _conjunction_selectivity(
    stats: TableStats, predicates: Iterable[Predicate]
) -> float:
    sel = 1.0
    for p in predicates:
        sel *= predicate_selectivity(stats, p)
    return sel
