"""Equi-depth histograms for selectivity estimation.

The what-if optimizer estimates predicate selectivities from these, the
same role single-column statistics play for SQL Server's cardinality
estimation (and for the "Optimizer" baseline of the paper's Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import StatisticsError


@dataclass(frozen=True)
class Bucket:
    """One histogram bucket over a sorted value domain (lo <= v <= hi)."""

    lo: object
    hi: object
    count: int
    distinct: int


class EquiDepthHistogram:
    """Equi-depth histogram over one column's non-NULL values."""

    def __init__(self, buckets: Sequence[Bucket], total: int) -> None:
        self.buckets = list(buckets)
        self.total = total

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, values: Sequence, n_buckets: int = 32) -> "EquiDepthHistogram":
        """Build from raw values (NULLs excluded by the caller)."""
        if n_buckets <= 0:
            raise StatisticsError("n_buckets must be positive")
        data = sorted(values)
        total = len(data)
        if total == 0:
            return cls([], 0)
        n_buckets = min(n_buckets, total)
        buckets: list[Bucket] = []
        per = total / n_buckets
        start = 0
        for b in range(n_buckets):
            end = total if b == n_buckets - 1 else int(round((b + 1) * per))
            end = max(end, start + 1)
            end = min(end, total)
            if start >= total:
                break
            chunk = data[start:end]
            buckets.append(
                Bucket(
                    lo=chunk[0],
                    hi=chunk[-1],
                    count=len(chunk),
                    distinct=len(set(chunk)),
                )
            )
            start = end
        return cls(buckets, total)

    # ------------------------------------------------------------------
    def selectivity_eq(self, value) -> float:
        """Fraction of rows equal to ``value``.

        A heavy hitter can span several equi-depth buckets, so the
        per-bucket shares are summed over every bucket whose range
        contains the value.
        """
        if self.total == 0:
            return 0.0
        rows = 0.0
        for bucket in self.buckets:
            if self._le(bucket.lo, value) and self._le(value, bucket.hi):
                rows += bucket.count / max(1, bucket.distinct)
        return min(1.0, rows / self.total)

    def selectivity_range(
        self,
        lo=None,
        hi=None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> float:
        """Fraction of rows in [lo, hi] (either bound may be None)."""
        if self.total == 0:
            return 0.0
        rows = 0.0
        for bucket in self.buckets:
            rows += bucket.count * self._bucket_overlap(
                bucket, lo, hi, lo_inclusive, hi_inclusive
            )
        return min(1.0, rows / self.total)

    # ------------------------------------------------------------------
    @staticmethod
    def _le(a, b) -> bool:
        try:
            return a <= b
        except TypeError:
            return str(a) <= str(b)

    @staticmethod
    def _interp(lo, hi, v) -> float:
        """Position of v within [lo, hi] in 0..1, numeric when possible."""
        if isinstance(lo, (int, float)) and isinstance(hi, (int, float)):
            if hi == lo:
                return 1.0
            return max(0.0, min(1.0, (v - lo) / (hi - lo)))
        # Strings: coarse interpolation on the first differing character.
        slo, shi, sv = str(lo), str(hi), str(v)
        if shi == slo:
            return 1.0
        width = max(len(slo), len(shi), len(sv))
        try:
            flo = _string_ordinal(slo, width)
            fhi = _string_ordinal(shi, width)
            fv = _string_ordinal(sv, width)
            if fhi == flo:
                return 1.0
            return max(0.0, min(1.0, (fv - flo) / (fhi - flo)))
        except Exception:  # pragma: no cover - defensive
            return 0.5

    def _bucket_overlap(self, bucket, lo, hi, lo_inc, hi_inc) -> float:
        """Fraction of a bucket's rows inside the range."""
        if lo is not None and self._lt(bucket.hi, lo):
            return 0.0
        if hi is not None and self._lt(hi, bucket.lo):
            return 0.0
        frac_lo = (
            0.0
            if lo is None or self._le(lo, bucket.lo)
            else self._interp(bucket.lo, bucket.hi, lo)
        )
        frac_hi = (
            1.0
            if hi is None or self._le(bucket.hi, hi)
            else self._interp(bucket.lo, bucket.hi, hi)
        )
        frac = frac_hi - frac_lo
        if frac <= 0.0:
            # Degenerate range touching the bucket: one value's share.
            frac = 1.0 / max(1, bucket.distinct)
        return min(1.0, frac)

    @staticmethod
    def _lt(a, b) -> bool:
        try:
            return a < b
        except TypeError:
            return str(a) < str(b)


def _string_ordinal(s: str, width: int) -> float:
    """Map a string to a float preserving lexicographic order (approx)."""
    value = 0.0
    scale = 1.0
    padded = s.ljust(width, "\x00")
    for ch in padded[:8]:
        scale /= 256.0
        value += min(255, ord(ch)) * scale
    return value
