"""Distinct-value estimators.

Implements the three estimators compared in the paper's Table 1 for
estimating the number of tuples (groups) in an aggregated materialized
view from a sample:

* **Multiply** — scale the sampled distinct count by 1/f (the naive
  baseline; the paper measures 379% average error).
* **Optimizer** — per-column independence assumption over single-column
  statistics (96% average error).
* **AE (Adaptive Estimator)** — a frequency-statistics estimator in the
  spirit of Charikar et al. [6]: frequent groups are counted exactly; the
  rare-group count is recovered from a Poisson model of per-group sample
  counts solved by method of moments (the paper reports 6% error).

GEE and Chao's estimator are provided as additional baselines.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import StatisticsError

#: Sample-frequency cutoff: groups seen more often than this are "frequent"
#: and counted exactly (the AE split from Charikar et al.).
AE_FREQUENT_CUTOFF = 10


def _solve_rate(ratio: float) -> float:
    """Solve x / (1 - exp(-x)) = ratio for x > 0.

    ``ratio`` is the mean sample-count of *observed* rare groups; it is
    always >= 1.  The left side is increasing, so bisection is safe.
    """
    if ratio <= 1.0:
        return 0.0
    lo, hi = 1e-9, 1.0
    while hi / (1.0 - math.exp(-hi)) < ratio:
        hi *= 2.0
        if hi > 1e9:  # pragma: no cover - defensive
            break
    for _ in range(80):
        mid = (lo + hi) / 2.0
        if mid / (1.0 - math.exp(-mid)) < ratio:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def adaptive_estimator(
    freq_of_freq: Mapping[int, int],
    d: int,
    r: int,
    n: int,
) -> float:
    """AE distinct-count estimate from sample frequency statistics.

    Args:
        freq_of_freq: ``{k: number of distinct values seen exactly k times}``
            (the paper's ``f = {f1, f2, ...}``, obtained from the MV
            sample's COUNT column per Appendix B.3).
        d: distinct values observed in the sample.
        r: sampled tuples (before aggregation).
        n: total tuples in the underlying (filtered) population.

    Returns:
        Estimated number of distinct values (MV groups) in the population.
    """
    if d < 0 or r < 0 or n < 0:
        raise StatisticsError("d, r, n must be non-negative")
    if d == 0 or r == 0:
        return 0.0
    if sum(freq_of_freq.values()) != d:
        raise StatisticsError("freq_of_freq inconsistent with d")
    if n <= r:
        return float(d)
    f = r / n

    d_high = sum(c for k, c in freq_of_freq.items() if k > AE_FREQUENT_CUTOFF)
    d_rare = d - d_high
    r_rare = sum(k * c for k, c in freq_of_freq.items()
                 if k <= AE_FREQUENT_CUTOFF)
    if d_rare == 0:
        return float(d_high)

    # Poisson model: each rare group contributes Poisson(x) sampled tuples,
    # x = f * (true group size).  Observed groups are those with count >= 1:
    #   E[mean count | observed] = x / (1 - e^-x)
    x = _solve_rate(r_rare / d_rare)
    if x <= 0.0:
        # All-singleton sample: no repetition signal; the unbiased fallback
        # assumes groups are so small every population group yields at most
        # one sampled tuple, i.e. distinct scales like the sample.
        d_rare_est = d_rare / f
    else:
        d_rare_est = r_rare / x
    # A population can't have more rare groups than rare tuples.
    d_rare_est = min(d_rare_est, r_rare / f)
    d_rare_est = max(d_rare_est, float(d_rare))
    return d_high + d_rare_est


def multiply_estimator(d: int, f: float) -> float:
    """Naive scale-up: sampled distinct count divided by the sampling
    fraction (paper's "Multiply" baseline)."""
    if not 0.0 < f <= 1.0:
        raise StatisticsError(f"sampling fraction {f} not in (0, 1]")
    return d / f


def independence_estimator(
    column_distincts: Sequence[float], n_filtered: float
) -> float:
    """Optimizer-style estimate: product of per-column distinct counts,
    capped by the (filtered) row count — the single-column-statistics
    independence assumption the paper's Table 1 calls "Optimizer"."""
    product = 1.0
    for nd in column_distincts:
        product *= max(1.0, nd)
        if product >= n_filtered:
            return max(1.0, n_filtered)
    return max(1.0, min(product, n_filtered))


def gee_estimator(freq_of_freq: Mapping[int, int], d: int, r: int, n: int) -> float:
    """Guaranteed-Error Estimator (Charikar et al.): sqrt(n/r)*f1 + rest."""
    if d == 0 or r == 0:
        return 0.0
    f1 = freq_of_freq.get(1, 0)
    return math.sqrt(n / r) * f1 + (d - f1)


def chao_estimator(freq_of_freq: Mapping[int, int], d: int) -> float:
    """Chao's lower-bound estimator d + f1^2 / (2 f2)."""
    f1 = freq_of_freq.get(1, 0)
    f2 = freq_of_freq.get(2, 0)
    if f2 == 0:
        return float(d + f1 * (f1 - 1) / 2.0)
    return d + f1 * f1 / (2.0 * f2)


def frequency_statistics(counts: Sequence[int]) -> dict[int, int]:
    """Build ``{k: #values seen k times}`` from per-group sample counts."""
    out: dict[int, int] = {}
    for c in counts:
        if c <= 0:
            raise StatisticsError("group counts must be positive")
        out[c] = out.get(c, 0) + 1
    return out
