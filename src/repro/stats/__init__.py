"""Statistics: histograms, column stats, distinct-value estimators."""

from repro.stats.column_stats import ColumnStats, DatabaseStats, TableStats
from repro.stats.distinct import (
    AE_FREQUENT_CUTOFF,
    adaptive_estimator,
    chao_estimator,
    frequency_statistics,
    gee_estimator,
    independence_estimator,
    multiply_estimator,
)
from repro.stats.histogram import Bucket, EquiDepthHistogram
from repro.stats.selectivity import (
    conjunction_selectivity,
    predicate_selectivity,
)

__all__ = [
    "predicate_selectivity",
    "conjunction_selectivity",
    "Bucket",
    "EquiDepthHistogram",
    "ColumnStats",
    "TableStats",
    "DatabaseStats",
    "adaptive_estimator",
    "multiply_estimator",
    "independence_estimator",
    "gee_estimator",
    "chao_estimator",
    "frequency_statistics",
    "AE_FREQUENT_CUTOFF",
]
