"""Statistics: histograms, column stats, distinct-value estimators."""

from repro.stats.column_stats import ColumnStats, DatabaseStats, TableStats
from repro.stats.distinct import (
    AE_FREQUENT_CUTOFF,
    adaptive_estimator,
    chao_estimator,
    frequency_statistics,
    gee_estimator,
    independence_estimator,
    multiply_estimator,
)
from repro.stats.histogram import Bucket, EquiDepthHistogram
from repro.stats.selectivity import (
    conjunction_selectivity,
    predicate_selectivity,
    reset_selectivity_memo_stats,
    selectivity_memo_enabled,
    selectivity_memo_stats,
    set_selectivity_memo,
)

__all__ = [
    "predicate_selectivity",
    "conjunction_selectivity",
    "set_selectivity_memo",
    "selectivity_memo_enabled",
    "selectivity_memo_stats",
    "reset_selectivity_memo_stats",
    "Bucket",
    "EquiDepthHistogram",
    "ColumnStats",
    "TableStats",
    "DatabaseStats",
    "adaptive_estimator",
    "multiply_estimator",
    "independence_estimator",
    "gee_estimator",
    "chao_estimator",
    "frequency_statistics",
    "AE_FREQUENT_CUTOFF",
]
