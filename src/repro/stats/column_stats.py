"""Table/column statistics used by the what-if optimizer and the size
estimation framework (cardinalities, distinct counts, histograms, average
stripped lengths)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.catalog.table import Table
from repro.compression.base import strip_value
from repro.stats.histogram import EquiDepthHistogram


@dataclass(frozen=True)
class ColumnStats:
    """Statistics of one column.

    Attributes:
        n_rows: rows in the table.
        n_nulls: NULL count.
        n_distinct: distinct non-NULL values.
        min_value / max_value: domain bounds (None when all NULL).
        avg_stripped_len: mean bytes after padding suppression (drives the
            analytic parts of compressed-size reasoning).
        histogram: equi-depth histogram over non-NULL values.
    """

    name: str
    n_rows: int
    n_nulls: int
    n_distinct: int
    min_value: object
    max_value: object
    avg_stripped_len: float
    histogram: EquiDepthHistogram

    @property
    def null_fraction(self) -> float:
        return self.n_nulls / self.n_rows if self.n_rows else 0.0

    @property
    def density(self) -> float:
        """1 / distinct: average fraction of rows per distinct value."""
        return 1.0 / self.n_distinct if self.n_distinct else 1.0


class TableStats:
    """Per-column statistics of a table (built once, read often)."""

    def __init__(self, table: Table, columns: Mapping[str, ColumnStats]) -> None:
        self.table_name = table.name
        self.n_rows = table.num_rows
        self.row_width = table.row_width
        self._columns = dict(columns)
        #: per-instance selectivity memos (stats are immutable once
        #: built, so a memoized selectivity can never go stale); see
        #: :mod:`repro.stats.selectivity`.
        self.selectivity_memo: dict = {}
        self.conjunction_memo: dict = {}

    def column(self, name: str) -> ColumnStats:
        return self._columns[name]

    def has_column(self, name: str) -> bool:
        return name in self._columns

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._columns)

    @classmethod
    def build(cls, table: Table, histogram_buckets: int = 32) -> "TableStats":
        """Compute exact statistics from the table data."""
        stats: dict[str, ColumnStats] = {}
        for col in table.columns:
            values = table.column_values(col.name)
            non_null = [v for v in values if v is not None]
            n_nulls = len(values) - len(non_null)
            distinct = set(non_null)
            if non_null:
                total_stripped = sum(
                    len(strip_value(col.dtype.encode(v), col))
                    for v in non_null
                )
                avg_len = total_stripped / len(non_null)
                mn, mx = min(non_null), max(non_null)
            else:
                avg_len, mn, mx = 0.0, None, None
            stats[col.name] = ColumnStats(
                name=col.name,
                n_rows=len(values),
                n_nulls=n_nulls,
                n_distinct=len(distinct),
                min_value=mn,
                max_value=mx,
                avg_stripped_len=avg_len,
                histogram=EquiDepthHistogram.build(
                    non_null, histogram_buckets
                ),
            )
        return cls(table, stats)


class DatabaseStats:
    """Statistics for all tables of a database, built lazily."""

    def __init__(self, database) -> None:
        self._database = database
        self._stats: dict[str, TableStats] = {}

    def table(self, name: str) -> TableStats:
        if name not in self._stats:
            self._stats[name] = TableStats.build(self._database.table(name))
        return self._stats[name]

    def invalidate(self, name: str | None = None) -> None:
        """Drop cached stats (after data changes)."""
        if name is None:
            self._stats.clear()
        else:
            self._stats.pop(name, None)
