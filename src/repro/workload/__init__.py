"""Workload IR: predicates, statements, workloads, SQL parser."""

from repro.workload.expr import (
    Between,
    Comparison,
    Conjunction,
    InList,
    Predicate,
    conjunction_of,
    flatten,
)
from repro.workload.parser import (
    date_to_days,
    days_to_date,
    parse_query,
    parse_statement,
)
from repro.workload.query import (
    Aggregate,
    DeleteQuery,
    InsertQuery,
    Join,
    SelectQuery,
    Statement,
    UpdateQuery,
    Workload,
    WorkloadStatement,
)

__all__ = [
    "Predicate",
    "Comparison",
    "Between",
    "InList",
    "Conjunction",
    "conjunction_of",
    "flatten",
    "Aggregate",
    "Join",
    "SelectQuery",
    "InsertQuery",
    "UpdateQuery",
    "DeleteQuery",
    "Statement",
    "Workload",
    "WorkloadStatement",
    "parse_statement",
    "parse_query",
    "date_to_days",
    "days_to_date",
]
