"""Statement IR: SELECT / INSERT / UPDATE / DELETE plus weighted workloads.

Column names are unique database-wide in all bundled datasets (TPC-H style
``l_``/``o_`` prefixes), so predicates and projections reference bare
column names; a statement is bound to tables via the database catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.catalog.schema import Database
from repro.errors import WorkloadError
from repro.workload.expr import Predicate

AGG_FUNCS = ("SUM", "COUNT", "AVG", "MIN", "MAX")


@dataclass(frozen=True)
class Aggregate:
    """An aggregate expression, e.g. SUM(price * discount).

    ``columns`` are the referenced columns (empty for COUNT(*)).
    """

    func: str
    columns: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.func not in AGG_FUNCS:
            raise WorkloadError(f"unknown aggregate {self.func!r}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = " * ".join(self.columns) if self.columns else "*"
        return f"{self.func}({inner})"


@dataclass(frozen=True)
class Join:
    """An equi-join ``left_column = right_column`` (FK joins in practice)."""

    left_column: str
    right_column: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.left_column} = {self.right_column}"


@dataclass(frozen=True)
class SelectQuery:
    """A (possibly multi-table, possibly aggregated) SELECT statement."""

    tables: tuple[str, ...]
    select_columns: tuple[str, ...] = ()
    aggregates: tuple[Aggregate, ...] = ()
    joins: tuple[Join, ...] = ()
    predicates: tuple[Predicate, ...] = ()
    group_by: tuple[str, ...] = ()
    order_by: tuple[str, ...] = ()

    @property
    def is_select(self) -> bool:
        return True

    @property
    def root_table(self) -> str:
        """The driving (fact) table: listed first in FROM."""
        return self.tables[0]

    # ------------------------------------------------------------------
    def referenced_columns(self) -> tuple[str, ...]:
        """Every column the query touches, de-duplicated, in a stable
        order: predicates, joins, group by, order by, projections,
        aggregates."""
        out: list[str] = []
        for p in self.predicates:
            out.extend(p.columns())
        for j in self.joins:
            out.extend((j.left_column, j.right_column))
        out.extend(self.group_by)
        out.extend(self.order_by)
        out.extend(self.select_columns)
        for agg in self.aggregates:
            out.extend(agg.columns)
        return tuple(dict.fromkeys(out))

    def columns_of_table(self, database: Database, table: str) -> tuple[str, ...]:
        """The referenced columns that belong to ``table``."""
        tbl = database.table(table)
        return tuple(
            c for c in self.referenced_columns() if tbl.has_column(c)
        )

    def predicates_of_table(self, database: Database, table: str) -> tuple[Predicate, ...]:
        """The simple predicates over ``table``'s columns."""
        tbl = database.table(table)
        out: list[Predicate] = []
        for p in self.predicates:
            if all(tbl.has_column(c) for c in p.columns()):
                out.append(p)
        return tuple(out)

    def validate(self, database: Database) -> None:
        """Check tables and column references against the catalog."""
        tables = [database.table(t) for t in self.tables]
        known = {c for t in tables for c in t.column_names}
        missing = [c for c in self.referenced_columns() if c not in known]
        if missing:
            raise WorkloadError(
                f"query references unknown columns {missing}"
            )


@dataclass(frozen=True)
class InsertQuery:
    """A bulk load of ``n_rows`` into ``table`` (the paper's update side)."""

    table: str
    n_rows: int

    @property
    def is_select(self) -> bool:
        return False


@dataclass(frozen=True)
class UpdateQuery:
    """UPDATE ``table`` SET cols WHERE predicate (modelled, not executed)."""

    table: str
    set_columns: tuple[str, ...]
    predicates: tuple[Predicate, ...] = ()

    @property
    def is_select(self) -> bool:
        return False


@dataclass(frozen=True)
class DeleteQuery:
    """DELETE FROM ``table`` WHERE predicate."""

    table: str
    predicates: tuple[Predicate, ...] = ()

    @property
    def is_select(self) -> bool:
        return False


Statement = SelectQuery | InsertQuery | UpdateQuery | DeleteQuery


@dataclass(frozen=True)
class WorkloadStatement:
    """One workload entry: a statement with an execution weight."""

    statement: Statement
    weight: float = 1.0
    name: str = ""


class Workload:
    """A weighted list of statements (queries + updates)."""

    def __init__(self, statements: Iterable[WorkloadStatement] = ()) -> None:
        self.statements: list[WorkloadStatement] = list(statements)

    def add(self, statement: Statement, weight: float = 1.0,
            name: str = "") -> None:
        self.statements.append(WorkloadStatement(statement, weight, name))

    @property
    def queries(self) -> list[WorkloadStatement]:
        return [s for s in self.statements if s.statement.is_select]

    @property
    def updates(self) -> list[WorkloadStatement]:
        return [s for s in self.statements if not s.statement.is_select]

    def reweighted(self, select_weight: float, update_weight: float) -> "Workload":
        """A copy with all SELECTs at ``select_weight`` and all updates at
        ``update_weight`` — how the paper builds SELECT-intensive vs
        INSERT-intensive variants of the same workload."""
        out = Workload()
        for ws in self.statements:
            w = select_weight if ws.statement.is_select else update_weight
            out.add(ws.statement, w, ws.name)
        return out

    def __len__(self) -> int:
        return len(self.statements)

    def __iter__(self):
        return iter(self.statements)
