"""Predicate expressions of the query IR.

Workload predicates are conjunctions of simple single-column comparisons —
the shape physical design tools reason about (sargable predicates drive
index candidate generation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import WorkloadError

COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


class Predicate:
    """Base class for row predicates."""

    def columns(self) -> tuple[str, ...]:
        """Columns this predicate references."""
        raise NotImplementedError

    def evaluate(self, row: Mapping[str, object]) -> bool:
        """Evaluate against a row given as a column->value mapping."""
        raise NotImplementedError

    @property
    def is_equality(self) -> bool:
        return False

    @property
    def is_range(self) -> bool:
        return False


@dataclass(frozen=True)
class Comparison(Predicate):
    """``column op literal`` for op in =, !=, <, <=, >, >=."""

    column: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise WorkloadError(f"unknown comparison operator {self.op!r}")

    def columns(self) -> tuple[str, ...]:
        return (self.column,)

    def evaluate(self, row: Mapping[str, object]) -> bool:
        v = row[self.column]
        if v is None:
            return False
        op = self.op
        if op == "=":
            return v == self.value
        if op == "!=":
            return v != self.value
        if op == "<":
            return v < self.value
        if op == "<=":
            return v <= self.value
        if op == ">":
            return v > self.value
        return v >= self.value

    @property
    def is_equality(self) -> bool:
        return self.op == "="

    @property
    def is_range(self) -> bool:
        return self.op in ("<", "<=", ">", ">=")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.column} {self.op} {self.value!r}"


@dataclass(frozen=True)
class Between(Predicate):
    """``column BETWEEN lo AND hi`` (inclusive)."""

    column: str
    lo: object
    hi: object

    def columns(self) -> tuple[str, ...]:
        return (self.column,)

    def evaluate(self, row: Mapping[str, object]) -> bool:
        v = row[self.column]
        if v is None:
            return False
        return self.lo <= v <= self.hi

    @property
    def is_range(self) -> bool:
        return True

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.column} BETWEEN {self.lo!r} AND {self.hi!r}"


@dataclass(frozen=True)
class InList(Predicate):
    """``column IN (v1, v2, ...)``."""

    column: str
    values: tuple

    def columns(self) -> tuple[str, ...]:
        return (self.column,)

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return row[self.column] in self.values

    @property
    def is_equality(self) -> bool:
        # An IN list behaves like a disjunction of equalities; for candidate
        # generation it is treated as an equality-sargable predicate.
        return True

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.column} IN {self.values!r}"


@dataclass(frozen=True)
class Conjunction(Predicate):
    """AND of simple predicates."""

    predicates: tuple[Predicate, ...]

    def columns(self) -> tuple[str, ...]:
        out: list[str] = []
        for p in self.predicates:
            out.extend(p.columns())
        return tuple(dict.fromkeys(out))

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return all(p.evaluate(row) for p in self.predicates)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return " AND ".join(str(p) for p in self.predicates)


def conjunction_of(predicates: Sequence[Predicate]) -> Predicate | None:
    """Normalize a predicate list: None / single / Conjunction."""
    flat: list[Predicate] = []
    for p in predicates:
        if isinstance(p, Conjunction):
            flat.extend(p.predicates)
        else:
            flat.append(p)
    if not flat:
        return None
    if len(flat) == 1:
        return flat[0]
    return Conjunction(tuple(flat))


def flatten(predicate: Predicate | None) -> tuple[Predicate, ...]:
    """The simple predicates of a (possibly compound) predicate."""
    if predicate is None:
        return ()
    if isinstance(predicate, Conjunction):
        return predicate.predicates
    return (predicate,)
