"""A small SQL parser producing the query IR.

Covers the statement shapes of the paper's workloads: single-block
SELECTs with FK equi-joins, conjunctive WHERE clauses, GROUP BY / ORDER
BY, aggregate projections, plus bulk-load INSERT and simple
UPDATE/DELETE statements.

Grammar (case-insensitive keywords)::

    select  := SELECT item (',' item)* FROM ident (JOIN ident ON ident '=' ident)*
               [WHERE pred (AND pred)*] [GROUP BY idents] [ORDER BY idents]
    item    := AGG '(' ('*' | ident (('*'|'+'|'-') ident)*) ')' | ident
    pred    := ident op literal
             | ident BETWEEN literal AND literal
             | ident IN '(' literal (',' literal)* ')'
    insert  := INSERT INTO ident BULK number
    update  := UPDATE ident SET ident '=' literal (',' ...)* [WHERE ...]
    delete  := DELETE FROM ident [WHERE ...]
    literal := number | 'string' | DATE 'YYYY-MM-DD'

DATE literals become days-since-epoch integers, matching
:class:`repro.catalog.datatypes.DateType`.
"""

from __future__ import annotations

import datetime
import re

from repro.errors import ParseError
from repro.workload.expr import (
    Between,
    Comparison,
    InList,
    Predicate,
)
from repro.workload.query import (
    AGG_FUNCS,
    Aggregate,
    DeleteQuery,
    InsertQuery,
    Join,
    SelectQuery,
    Statement,
    UpdateQuery,
)

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<string>'(?:[^']|'')*')"
    r"|(?P<number>-?\d+(?:\.\d+)?)"
    r"|(?P<ident>[A-Za-z_][A-Za-z_0-9\.]*)"
    r"|(?P<op><=|>=|!=|<>|=|<|>)"
    r"|(?P<punct>[(),*+\-])"
    r")"
)

_EPOCH = datetime.date(1970, 1, 1)


def date_to_days(text: str) -> int:
    """'YYYY-MM-DD' -> days since 1970-01-01."""
    return (datetime.date.fromisoformat(text) - _EPOCH).days


def days_to_date(days: int) -> datetime.date:
    """Inverse of :func:`date_to_days` (handy in examples/tests)."""
    return _EPOCH + datetime.timedelta(days=days)


class _Tokens:
    """Token stream with one-token lookahead."""

    def __init__(self, text: str) -> None:
        self.tokens: list[tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if not m or m.end() == pos:
                rest = text[pos:].strip()
                if not rest:
                    break
                raise ParseError(f"cannot tokenize near {rest[:25]!r}")
            pos = m.end()
            for kind in ("string", "number", "ident", "op", "punct"):
                val = m.group(kind)
                if val is not None:
                    self.tokens.append((kind, val))
                    break
        self.pos = 0

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of statement")
        self.pos += 1
        return tok

    def accept_keyword(self, *words: str) -> bool:
        """Consume the given keyword sequence if present."""
        save = self.pos
        for word in words:
            tok = self.peek()
            if tok is None or tok[0] != "ident" or tok[1].upper() != word:
                self.pos = save
                return False
            self.pos += 1
        return True

    def expect_keyword(self, *words: str) -> None:
        if not self.accept_keyword(*words):
            raise ParseError(f"expected {' '.join(words)} near {self.peek()}")

    def accept_punct(self, ch: str) -> bool:
        tok = self.peek()
        if tok and tok[0] == "punct" and tok[1] == ch:
            self.pos += 1
            return True
        return False

    def expect_punct(self, ch: str) -> None:
        if not self.accept_punct(ch):
            raise ParseError(f"expected {ch!r} near {self.peek()}")

    def expect_ident(self) -> str:
        tok = self.next()
        if tok[0] != "ident":
            raise ParseError(f"expected identifier, got {tok}")
        return tok[1]

    @property
    def done(self) -> bool:
        return self.pos >= len(self.tokens)


def _parse_literal(ts: _Tokens):
    tok = ts.peek()
    if tok is None:
        raise ParseError("expected literal")
    kind, val = tok
    if kind == "ident" and val.upper() == "DATE":
        ts.next()
        s = ts.next()
        if s[0] != "string":
            raise ParseError("DATE must be followed by a 'YYYY-MM-DD' string")
        return date_to_days(s[1][1:-1])
    if kind == "string":
        ts.next()
        return val[1:-1].replace("''", "'")
    if kind == "number":
        ts.next()
        return float(val) if "." in val else int(val)
    raise ParseError(f"expected literal, got {tok}")


def _parse_predicate(ts: _Tokens) -> Predicate:
    column = ts.expect_ident()
    if ts.accept_keyword("BETWEEN"):
        lo = _parse_literal(ts)
        ts.expect_keyword("AND")
        hi = _parse_literal(ts)
        return Between(column, lo, hi)
    if ts.accept_keyword("IN"):
        ts.expect_punct("(")
        values = [_parse_literal(ts)]
        while ts.accept_punct(","):
            values.append(_parse_literal(ts))
        ts.expect_punct(")")
        return InList(column, tuple(values))
    tok = ts.next()
    if tok[0] != "op":
        raise ParseError(f"expected comparison operator, got {tok}")
    op = "!=" if tok[1] == "<>" else tok[1]
    return Comparison(column, op, _parse_literal(ts))


def _parse_where(ts: _Tokens) -> tuple[Predicate, ...]:
    preds = [_parse_predicate(ts)]
    while ts.accept_keyword("AND"):
        preds.append(_parse_predicate(ts))
    return tuple(preds)


def _parse_select_item(ts: _Tokens) -> tuple[Aggregate | None, str | None]:
    tok = ts.peek()
    if tok and tok[0] == "ident" and tok[1].upper() in AGG_FUNCS:
        save = ts.pos
        func = ts.next()[1].upper()
        if not ts.accept_punct("("):
            ts.pos = save  # an identifier that merely looks like a keyword
        else:
            if ts.accept_punct("*"):
                ts.expect_punct(")")
                return Aggregate(func, ()), None
            cols = [ts.expect_ident()]
            while ts.accept_punct("*") or ts.accept_punct("+") or ts.accept_punct("-"):
                cols.append(ts.expect_ident())
            ts.expect_punct(")")
            return Aggregate(func, tuple(cols)), None
    return None, ts.expect_ident()


def _parse_ident_list(ts: _Tokens) -> tuple[str, ...]:
    idents = [ts.expect_ident()]
    while ts.accept_punct(","):
        idents.append(ts.expect_ident())
    return tuple(idents)


def _parse_select(ts: _Tokens) -> SelectQuery:
    aggregates: list[Aggregate] = []
    select_columns: list[str] = []
    while True:
        agg, col = _parse_select_item(ts)
        if agg is not None:
            aggregates.append(agg)
        elif col is not None:
            select_columns.append(col)
        if not ts.accept_punct(","):
            break
    ts.expect_keyword("FROM")
    tables = [ts.expect_ident()]
    joins: list[Join] = []
    while ts.accept_keyword("JOIN"):
        tables.append(ts.expect_ident())
        ts.expect_keyword("ON")
        left = ts.expect_ident()
        tok = ts.next()
        if tok != ("op", "="):
            raise ParseError("JOIN condition must be an equi-join")
        right = ts.expect_ident()
        joins.append(Join(left, right))
    predicates: tuple[Predicate, ...] = ()
    if ts.accept_keyword("WHERE"):
        predicates = _parse_where(ts)
    group_by: tuple[str, ...] = ()
    if ts.accept_keyword("GROUP", "BY"):
        group_by = _parse_ident_list(ts)
    order_by: tuple[str, ...] = ()
    if ts.accept_keyword("ORDER", "BY"):
        order_by = _parse_ident_list(ts)
    return SelectQuery(
        tables=tuple(tables),
        select_columns=tuple(select_columns),
        aggregates=tuple(aggregates),
        joins=tuple(joins),
        predicates=predicates,
        group_by=group_by,
        order_by=order_by,
    )


def parse_statement(text: str) -> Statement:
    """Parse one SQL statement into the IR.

    Raises:
        ParseError: on any syntax the subset does not cover.
    """
    ts = _Tokens(text)
    if ts.accept_keyword("SELECT"):
        stmt: Statement = _parse_select(ts)
    elif ts.accept_keyword("INSERT", "INTO"):
        table = ts.expect_ident()
        ts.expect_keyword("BULK")
        tok = ts.next()
        if tok[0] != "number":
            raise ParseError("INSERT ... BULK needs a row count")
        stmt = InsertQuery(table, int(float(tok[1])))
    elif ts.accept_keyword("UPDATE"):
        table = ts.expect_ident()
        ts.expect_keyword("SET")
        set_cols = [ts.expect_ident()]
        tok = ts.next()
        if tok != ("op", "="):
            raise ParseError("UPDATE SET needs assignments")
        _parse_literal(ts)
        while ts.accept_punct(","):
            set_cols.append(ts.expect_ident())
            tok = ts.next()
            if tok != ("op", "="):
                raise ParseError("UPDATE SET needs assignments")
            _parse_literal(ts)
        preds: tuple[Predicate, ...] = ()
        if ts.accept_keyword("WHERE"):
            preds = _parse_where(ts)
        stmt = UpdateQuery(table, tuple(set_cols), preds)
    elif ts.accept_keyword("DELETE", "FROM"):
        table = ts.expect_ident()
        preds = ()
        if ts.accept_keyword("WHERE"):
            preds = _parse_where(ts)
        stmt = DeleteQuery(table, preds)
    else:
        raise ParseError(f"unsupported statement start: {ts.peek()}")
    if not ts.done:
        raise ParseError(f"trailing tokens: {ts.peek()}")
    return stmt


def parse_query(text: str) -> SelectQuery:
    """Parse text that must be a SELECT."""
    stmt = parse_statement(text)
    if not isinstance(stmt, SelectQuery):
        raise ParseError("expected a SELECT statement")
    return stmt
