"""Deterministic workload drift: phase-shifting query mixes for the
continuous-tuning scenario the paper never ran.

A *drift schedule* turns one static workload into a sequence of phases.
Each phase keeps the same statements but reshapes the weights three
ways, mirroring how production query traffic actually moves:

* **Query mix** — a seeded sample of the SELECTs becomes *hot*
  (boosted weight) while everything else goes *cold* (damped hard, so
  structures chosen for a previous phase measurably lose their
  benefit — the trigger for retune drops).
* **Arrival weights** — hot statements get a per-(phase, query) jitter
  factor, so two hot queries in the same phase rarely share a weight.
* **Update share** — the maintenance weight cycles per phase
  (``update_weights``), alternating read-mostly and update-heavy
  phases; with real maintenance cost in the mix, an index that serves
  only cold queries is strictly worse than dropping it.

Everything is a pure function of ``(workload, spec, phase)``: the RNG
is an integer-seeded :class:`random.Random` derived from
``(spec.seed, phase)``, and statements are addressed by their position
in the workload — never by hash order — so a phase is byte-identical
across processes, PYTHONHASHSEED values, and worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from repro.errors import AdvisorError
from repro.workload.query import Workload

#: large odd multiplier decorrelating (seed, phase) streams.
_PHASE_STRIDE = 1_000_003


@dataclass(frozen=True)
class DriftSpec:
    """Knobs of one drift schedule (all deterministic given ``seed``).

    Args:
        seed: base seed; each phase draws from ``Random(seed * stride
            + phase)``.
        hot_fraction: share of the SELECT statements boosted per phase
            (at least one query is always hot).
        hot_weight: weight of a hot SELECT before jitter.
        cold_weight: weight of every non-hot SELECT — keep it well
            below the update weights so a cold phase actually strands
            previously-chosen structures.
        arrival_jitter: hot weights become ``hot_weight * (1 + jitter
            * u)`` with ``u`` uniform in [0, 1); 0 disables it.
        update_weights: per-phase update/bulk-load weights, cycled
            (``phase % len``) — the update-share axis of the drift.
    """

    seed: int = 0
    hot_fraction: float = 0.3
    hot_weight: float = 8.0
    cold_weight: float = 0.05
    arrival_jitter: float = 0.25
    update_weights: tuple[float, ...] = (1.0, 4.0)

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_fraction <= 1.0:
            raise AdvisorError(
                f"hot_fraction must be in (0, 1], got {self.hot_fraction}"
            )
        if self.hot_weight <= 0 or self.cold_weight <= 0:
            raise AdvisorError("drift weights must be positive")
        if self.arrival_jitter < 0:
            raise AdvisorError("arrival_jitter must be >= 0")
        if not self.update_weights or any(
            w <= 0 for w in self.update_weights
        ):
            raise AdvisorError("update_weights must be positive and non-empty")

    # ------------------------------------------------------------------
    # wire form (the service reconstructs a spec from a job payload)
    # ------------------------------------------------------------------
    _FIELDS = (
        "seed", "hot_fraction", "hot_weight", "cold_weight",
        "arrival_jitter", "update_weights",
    )

    def to_dict(self) -> dict:
        out = {name: getattr(self, name) for name in self._FIELDS}
        out["update_weights"] = list(self.update_weights)
        return out

    @classmethod
    def from_dict(cls, raw: dict) -> "DriftSpec":
        if not isinstance(raw, dict):
            raise AdvisorError(f"drift spec must be an object, got {raw!r}")
        unknown = sorted(set(raw) - set(cls._FIELDS))
        if unknown:
            raise AdvisorError(
                f"unknown drift spec field(s): {', '.join(unknown)}"
            )
        kwargs = dict(raw)
        if "seed" in kwargs:
            if not isinstance(kwargs["seed"], int) or \
                    isinstance(kwargs["seed"], bool):
                raise AdvisorError("drift seed must be an integer")
        for name in ("hot_fraction", "hot_weight", "cold_weight",
                     "arrival_jitter"):
            if name in kwargs:
                value = kwargs[name]
                if not isinstance(value, (int, float)) or \
                        isinstance(value, bool):
                    raise AdvisorError(f"drift {name} must be a number")
                kwargs[name] = float(value)
        if "update_weights" in kwargs:
            weights = kwargs["update_weights"]
            if not isinstance(weights, (list, tuple)) or not all(
                isinstance(w, (int, float)) and not isinstance(w, bool)
                for w in weights
            ):
                raise AdvisorError("drift update_weights must be numbers")
            kwargs["update_weights"] = tuple(float(w) for w in weights)
        return cls(**kwargs)


def _phase_rng(spec: DriftSpec, phase: int) -> Random:
    """Integer-seeded stream for one phase — stable across processes
    (never seed :class:`random.Random` with a hashed object here)."""
    return Random(spec.seed * _PHASE_STRIDE + phase)


def hot_statement_indexes(
    workload: Workload, spec: DriftSpec, phase: int
) -> tuple[int, ...]:
    """Workload positions of the SELECTs that are hot in ``phase``
    (sorted; empty only for a workload with no SELECTs)."""
    select_positions = [
        i for i, ws in enumerate(workload) if ws.statement.is_select
    ]
    if not select_positions:
        return ()
    n_hot = max(1, round(spec.hot_fraction * len(select_positions)))
    rng = _phase_rng(spec, phase)
    return tuple(sorted(rng.sample(select_positions, n_hot)))


def drift_phase(
    workload: Workload, spec: DriftSpec, phase: int
) -> Workload:
    """The workload as phase ``phase`` of the drift schedule sees it.

    Statements and their order are preserved — only weights move — so
    every phase shares the costers' statement skeleton and the phase
    sequence stays comparable statement-by-statement.
    """
    if phase < 0:
        raise AdvisorError(f"drift phase must be >= 0, got {phase}")
    hot = set(hot_statement_indexes(workload, spec, phase))
    rng = _phase_rng(spec, phase)
    update_weight = spec.update_weights[phase % len(spec.update_weights)]
    out = Workload()
    for i, ws in enumerate(workload):
        if not ws.statement.is_select:
            weight = update_weight
        elif i in hot:
            # One uniform draw per hot query, in workload order: the
            # jitter stream is position-addressed, not hash-addressed.
            weight = spec.hot_weight * (1.0 + spec.arrival_jitter * rng.random())
        else:
            weight = spec.cold_weight
        out.add(ws.statement, weight=weight, name=ws.name)
    return out


@dataclass
class DriftingWorkload:
    """A base workload plus a drift spec: ``phase(k)`` materializes
    phase ``k``'s weighted workload (memoized — phases are pure)."""

    base: Workload
    spec: DriftSpec = field(default_factory=DriftSpec)

    def __post_init__(self) -> None:
        self._phases: dict[int, Workload] = {}

    def phase(self, phase: int) -> Workload:
        got = self._phases.get(phase)
        if got is None:
            got = drift_phase(self.base, self.spec, phase)
            self._phases[phase] = got
        return got

    def phases(self, n) -> list[Workload]:
        """The first ``n`` phases when ``n`` is a count, or exactly the
        listed phases when ``n`` is an iterable of phase numbers (a
        sparse schedule, e.g. ``(0, 2)`` to jump across a shift)."""
        if isinstance(n, int):
            return [self.phase(k) for k in range(n)]
        return [self.phase(int(k)) for k in n]
