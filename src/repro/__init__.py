"""repro — Compression Aware Physical Database Design.

A from-scratch Python reproduction of Kimura, Narasayya & Syamala (PVLDB
4(10), 2011): a compression-aware index advisor (DTAc) together with the
substrates it needs — a page-level storage engine with real compression
codecs, a sampling framework (SampleCF, join synopses, MV samples), the
size-deduction graph optimizer, and a what-if query optimizer with the
paper's compression-aware cost model.

Quickstart::

    from repro.api import Session
    from repro import tpch_database, tpch_workload

    db = tpch_database(scale=0.3)
    wl = tpch_workload(db, select_weight=5.0, insert_weight=1.0)
    session = Session(db, wl, variant="dtac-both")
    result = session.tune(budget_bytes=db.total_data_bytes() // 4)
    print(f"improvement: {result.improvement_pct:.1f}%")
    for index in result.configuration:
        print(" ", index.display_name())
"""

from repro.advisor import (
    AdvisorOptions,
    AdvisorResult,
    RetuneResult,
    SweepResult,
    TuningAdvisor,
    TuningSession,
)
from repro.catalog import Column, Database, Table
from repro.columnstore import (
    ColumnStoreAdvisor,
    ProjectionDef,
    ProjectionSizer,
    tune_columnstore,
)
from repro.compression import ADVISOR_METHODS, CompressionMethod
from repro.engine import (
    Executor,
    validate_recommendation,
    validate_selectivities,
)
from repro.optimizer import CostConstants, DeltaWorkloadCoster, WhatIfOptimizer
from repro.physical import Configuration, IndexDef, MVDefinition
from repro.sampling import SampleManager
from repro.sizeest import ErrorModel, SizeEstimate, SizeEstimator
from repro.stats import DatabaseStats
from repro.storage import IndexKind
from repro.workload import Workload, parse_query, parse_statement
from repro.datasets import (
    sales_database,
    sales_workload,
    tpch_database,
    tpch_workload,
    tpcds_lite_database,
)

__version__ = "1.0.0"


def __getattr__(name: str):
    """PEP 562 forwarders for the deprecated free-function entry
    points; the home-module shims emit the DeprecationWarning.  Use
    :class:`repro.api.Session` instead."""
    if name in ("tune", "tune_decoupled", "run_sweep"):
        from repro import advisor as _advisor
        return getattr(_advisor, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

__all__ = [
    "__version__",
    # catalog / storage
    "Database",
    "Table",
    "Column",
    "IndexKind",
    # compression
    "CompressionMethod",
    "ADVISOR_METHODS",
    # physical design
    "IndexDef",
    "MVDefinition",
    "Configuration",
    # workload
    "Workload",
    "parse_statement",
    "parse_query",
    # stats / sampling / size estimation
    "DatabaseStats",
    "SampleManager",
    "SizeEstimator",
    "SizeEstimate",
    "ErrorModel",
    # optimizer
    "DeltaWorkloadCoster",
    "WhatIfOptimizer",
    "CostConstants",
    # advisor
    "TuningAdvisor",
    "AdvisorOptions",
    "AdvisorResult",
    "TuningSession",
    "RetuneResult",
    "tune",
    "tune_decoupled",
    "run_sweep",
    "SweepResult",
    # engine
    "Executor",
    "validate_recommendation",
    "validate_selectivities",
    # column store (Section 8 future work)
    "ColumnStoreAdvisor",
    "ProjectionDef",
    "ProjectionSizer",
    "tune_columnstore",
    # datasets
    "tpch_database",
    "tpch_workload",
    "sales_database",
    "sales_workload",
    "tpcds_lite_database",
]
