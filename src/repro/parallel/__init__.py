"""Parallel candidate evaluation: process-pool fan-out for SampleCF
builds and what-if costings, plus a persistent, content-addressed
estimation cache shared across advisor runs.

The package has three parts:

* :mod:`repro.parallel.signature` — stable (process-independent)
  content signatures for indexes, statements, configurations and the
  sample population; every cross-process or on-disk cache key is built
  from these, never from Python's randomized ``hash()``.
* :mod:`repro.parallel.cache` — :class:`EstimationCache`, the on-disk
  size-estimate cache keyed on index signature x compression method x
  sample fingerprint, and :class:`CostCache`, the on-disk what-if cost
  cache keyed on statement x sized-structure signatures x run context.
* :mod:`repro.parallel.engine` — :class:`ParallelEngine`, a fork-based
  process pool with deterministic result ordering and a transparent
  sequential fallback (``workers=1`` or platforms without ``fork``).
"""

from repro.parallel.cache import CostCache, EstimationCache
from repro.parallel.engine import DirtyRelay, ParallelEngine
from repro.parallel.signature import (
    config_signature,
    index_identity,
    index_signature,
    sample_fingerprint,
    sized_index_signature,
    statement_signature,
)

__all__ = [
    "CostCache",
    "DirtyRelay",
    "EstimationCache",
    "ParallelEngine",
    "config_signature",
    "index_identity",
    "index_signature",
    "sample_fingerprint",
    "sized_index_signature",
    "statement_signature",
]
