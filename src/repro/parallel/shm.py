"""Shared-memory sample pages for forked estimation workers.

SampleCF's inputs — the padding-stripped serialized column blobs of the
per-table samples — are the largest state the parallel engine's workers
need.  Fork inheritance hands them over without pickling, but every
byte still lives in the parent's Python heap as lists of small ``bytes``
objects: the first time a worker touches them, reference-count updates
break copy-on-write page by page and each worker ends up with its own
physical copy of the sample data.

:class:`SharedSamplePages` moves the canonical bytes out of the heap
into one ``multiprocessing.shared_memory`` segment *before* the pool
forks.  The segment is mapped — not copied — into every worker; only
the small per-key offset tables travel through fork memory.  Workers
materialize a column's value list lazily from the mapped pages on first
use, so untouched columns cost nothing per worker and the blob itself
exists once machine-wide.

Ownership: the parent creates the segment and is the only process that
``close()``/``unlink()``s it (at engine shutdown); forked children just
read the inherited mapping.  ``tests/test_shared_samples.py`` proves
the mapping is genuinely shared by mutating a sentinel byte in the
parent and observing it from a forked worker.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Iterable, Mapping, Sequence

from repro.errors import AdvisorError

#: Reserved column slot for a sample's RID pseudo-column blob.
RID_SLOT = "_rid"


class SharedSamplePages:
    """One shared-memory segment holding many samples' column blobs.

    The store is sealed by a single :meth:`publish` call (shared-memory
    segments cannot grow): callers gather every sample they want to
    share, publish once, then fork.
    """

    def __init__(self) -> None:
        self._shm: shared_memory.SharedMemory | None = None
        #: key -> column name -> (offset, per-value lengths).
        self._index: dict[object, dict[str, tuple[int, tuple[int, ...]]]] = {}
        self.published_keys = 0
        self.published_bytes = 0

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self._shm is not None

    @property
    def name(self) -> str | None:
        """OS name of the backing segment (None before publish)."""
        return self._shm.name if self._shm is not None else None

    # ------------------------------------------------------------------
    def publish(
        self,
        entries: Iterable[tuple[object, Mapping[str, Sequence[bytes]]]],
    ) -> int:
        """Copy ``(key, {column: values})`` entries into one segment.

        Returns the number of keys published.  May only be called once
        per store; an empty entry set leaves the store inactive.
        """
        if self._shm is not None:
            raise AdvisorError("shared sample store already published")
        index: dict[object, dict[str, tuple[int, tuple[int, ...]]]] = {}
        blobs: list[bytes] = []
        total = 0
        for key, columns in entries:
            cols: dict[str, tuple[int, tuple[int, ...]]] = {}
            for name, values in columns.items():
                blob = b"".join(values)
                cols[name] = (total, tuple(len(v) for v in values))
                blobs.append(blob)
                total += len(blob)
            index[key] = cols
        if total == 0:
            return 0
        shm = shared_memory.SharedMemory(create=True, size=total)
        buf = shm.buf
        offset = 0
        for blob in blobs:
            buf[offset:offset + len(blob)] = blob
            offset += len(blob)
        self._shm = shm
        self._index = index
        self.published_keys = len(index)
        self.published_bytes = total
        return len(index)

    # ------------------------------------------------------------------
    def has(self, key: object) -> bool:
        return key in self._index

    def column(self, key: object, name: str) -> list[bytes] | None:
        """Materialize one column's value list from the mapped pages
        (None when the key/column was not published)."""
        if self._shm is None:
            return None
        cols = self._index.get(key)
        if cols is None:
            return None
        entry = cols.get(name)
        if entry is None:
            return None
        offset, lengths = entry
        buf = self._shm.buf
        out: list[bytes] = []
        for length in lengths:
            end = offset + length
            out.append(bytes(buf[offset:end]))
            offset = end
        return out

    # ------------------------------------------------------------------
    def close(self, unlink: bool = False) -> None:
        """Detach from the segment; ``unlink=True`` (owner only)
        destroys it."""
        shm, self._shm = self._shm, None
        self._index = {}
        if shm is None:
            return
        shm.close()
        if unlink:
            shm.unlink()

    def stats(self) -> dict:
        return {
            "active": self.active,
            "published_keys": self.published_keys,
            "published_bytes": self.published_bytes,
        }
