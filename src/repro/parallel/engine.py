"""ParallelEngine: deterministic process-pool fan-out with a sequential
fallback.

The engine parallelizes the advisor's two hot loops — SampleCF index
builds and what-if costings — without changing their results:

* **Determinism.**  ``map`` preserves input order, and each task is a
  pure function of the forked parent state plus its payload, so the
  parallel path returns exactly the floats the sequential path would
  (same arithmetic, same operand order, per item).  Reductions stay in
  the parent and are shared with the sequential path.
* **Fork inheritance.**  Pools use the ``fork`` start method: workers
  inherit the parent's database, statistics, samples and caches at
  session start for free, so task payloads stay small (an IndexDef or a
  Configuration, never a table).  Sessions are opened *after* the state
  the tasks need exists — e.g. the advisor forks its enumeration pool
  only once all candidate sizes are estimated.
* **Fallback.**  ``workers<=1``, platforms without ``fork``, maps
  outside a session (or under a different session context), and broken
  pools all degrade to an in-process sequential loop with identical
  results.

Task functions must be module-level (picklable by reference) and take
``(context, item)``; the context travels through fork memory, not
pickling.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Callable, Iterable, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Context object workers read; populated in the parent immediately
#: before the pool forks, inherited by every worker.
_FORK_CONTEXT = None


def _invoke(payload):
    fn, item = payload
    return fn(_FORK_CONTEXT, item)


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def default_workers() -> int:
    """Workers for ``--workers 0`` (auto): one per CPU, at least one."""
    return max(1, os.cpu_count() or 1)


class ParallelEngine:
    """Fans tasks over a pool of forked workers, in order.

    Args:
        workers: pool size; 0 = one per CPU; 1 = always sequential.
        min_batch: smallest batch worth paying fork/pickle overhead for;
            shorter batches run sequentially even inside a session.
    """

    def __init__(self, workers: int = 1, min_batch: int = 2) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = default_workers() if workers == 0 else workers
        self.min_batch = min_batch
        self._pool: ProcessPoolExecutor | None = None
        self._session_context = None
        #: instrumentation: (parallel maps, sequential maps, tasks fanned)
        self.parallel_maps = 0
        self.sequential_maps = 0
        self.tasks_dispatched = 0

    # ------------------------------------------------------------------
    @property
    def parallel(self) -> bool:
        """Whether this engine can ever fan out."""
        return self.workers > 1 and fork_available()

    @property
    def in_session(self) -> bool:
        return self._pool is not None

    # ------------------------------------------------------------------
    @contextmanager
    def session(self, context):
        """Open a worker pool whose processes snapshot the parent *now*.

        Tasks mapped with this ``context`` run on the pool; any other
        context (e.g. a nested estimator batch inside an advisor
        session) falls back to sequential execution, because the inner
        context's state may postdate the fork.  Nested sessions and
        sequential engines are transparent no-ops.
        """
        global _FORK_CONTEXT
        if not self.parallel or self.in_session:
            yield self
            return
        _FORK_CONTEXT = context
        self._session_context = context
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context("fork"),
        )
        try:
            yield self
        finally:
            pool, self._pool = self._pool, None
            self._session_context = None
            _FORK_CONTEXT = None
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable[[object, T], R],
        items: Iterable[T],
        context,
    ) -> list[R]:
        """``[fn(context, item) for item in items]``, possibly fanned
        out, always in input order.

        Runs on the pool only when a session is active for this exact
        ``context``; otherwise sequentially in the parent.  A pool that
        dies mid-map (e.g. a worker OOM-killed) is retried sequentially.
        """
        items = list(items)
        if (
            self._pool is None
            or context is not self._session_context
            or len(items) < self.min_batch
        ):
            self.sequential_maps += 1
            return [fn(context, item) for item in items]
        global _FORK_CONTEXT
        # Re-assert the context on every parallel map: the pool forks
        # workers lazily as submissions arrive, and a nested session of
        # *another* engine instance may have rewritten the global in
        # between — any worker forked during this map must inherit this
        # session's context.  (Engines are single-threaded by design.)
        _FORK_CONTEXT = context
        payloads = [(fn, item) for item in items]
        chunksize = max(1, len(items) // (self.workers * 4))
        try:
            results = list(self._pool.map(_invoke, payloads, chunksize=chunksize))
        except BrokenProcessPool:
            self._recover_pool()
            self.sequential_maps += 1
            return [fn(context, item) for item in items]
        except Exception:
            # A worker task raised.  Propagating alone would leak the
            # pool's queued work: the executor keeps chewing the
            # remaining payloads (and a broken one keeps failing every
            # later map) until the session closes.  Tear the pool down,
            # cancelling what hasn't started, and start a fresh one so
            # the session stays usable for callers that catch the error.
            self._recover_pool()
            raise
        self.parallel_maps += 1
        self.tasks_dispatched += len(items)
        return results

    def _recover_pool(self) -> None:
        """Shut down the session's pool (cancelling queued tasks) and
        replace it with a fresh fork of the same session context."""
        global _FORK_CONTEXT
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        if self._session_context is None:
            return
        _FORK_CONTEXT = self._session_context
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context("fork"),
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "workers": self.workers,
            "fork_available": fork_available(),
            "parallel_maps": self.parallel_maps,
            "sequential_maps": self.sequential_maps,
            "tasks_dispatched": self.tasks_dispatched,
        }
