"""ParallelEngine: deterministic process-pool fan-out with a sequential
fallback.

The engine parallelizes the advisor's two hot loops — SampleCF index
builds and what-if costings — without changing their results:

* **Determinism.**  ``map`` preserves input order, and each task is a
  pure function of the forked parent state plus its payload, so the
  parallel path returns exactly the floats the sequential path would
  (same arithmetic, same operand order, per item).  Reductions stay in
  the parent and are shared with the sequential path.
* **Fork inheritance.**  Pools use the ``fork`` start method: workers
  inherit the parent's database, statistics, samples and caches at
  session start for free, so task payloads stay small (an IndexDef or a
  Configuration, never a table).  Sessions are opened *after* the state
  the tasks need exists — e.g. the advisor forks its enumeration pool
  only once all candidate sizes are estimated.
* **Fallback.**  ``workers<=1``, platforms without ``fork``, maps
  outside a session (or under a different session context), and broken
  pools all degrade to an in-process sequential loop with identical
  results.

* **Session reuse.**  Pools outlive their session (``keep_alive``): a
  later session with the same context object reuses the forked workers
  instead of paying another fork, unless the parent declared its state
  advanced (``mark_dirty``) — which is how one advisor run serves its
  per-query evaluation *and* every greedy step of every enumeration
  seed from a single pool when no new estimation state appeared in
  between.  ``shutdown()`` releases the dormant pool when a run ends.

Task functions must be module-level (picklable by reference) and take
``(context, item)``; the context travels through fork memory, not
pickling.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Callable, Iterable, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Per-engine context objects workers read, keyed by the owning
#: engine's id: populated in the parent immediately before that
#: engine's pool forks, inherited (the whole dict) by every worker.
#: Keyed — not a single global — because the tuning service runs one
#: engine per scheduler lane on concurrent threads: lane B asserting
#: its context between lane A's assertion and A's lazy worker fork
#: must not hand A's workers B's context.  Distinct keys make the
#: concurrent writes independent (each engine only ever writes its
#: own slot), and object ids stay valid across fork.
_FORK_CONTEXTS: dict[int, object] = {}


def _invoke(payload):
    key, fn, item = payload
    return fn(_FORK_CONTEXTS.get(key), item)


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def effective_cpu_count() -> int:
    """CPUs this process may actually run on.

    Prefers the scheduling-aware counts (``os.process_cpu_count`` on
    3.13+, CPU affinity elsewhere) over ``os.cpu_count``: in a
    cgroup-pinned container the box may advertise 64 CPUs while the
    advisor is confined to one, and forking workers there only adds
    pickle and context-switch overhead to a serialized execution.
    """
    counter = getattr(os, "process_cpu_count", None)
    if counter is not None:
        n = counter()
    elif hasattr(os, "sched_getaffinity"):
        n = len(os.sched_getaffinity(0))
    else:  # pragma: no cover - platform without affinity introspection
        n = os.cpu_count()
    return max(1, n or 1)


def default_workers() -> int:
    """Workers for ``--workers 0`` (auto): one per CPU, at least one."""
    return max(1, os.cpu_count() or 1)


#: Tasks each worker should get, at minimum, for a fan-out to beat the
#: sequential loop.  Fork-inherited pools still pay per-task pickling
#: of payloads and results plus executor queue round-trips; calibrated
#: on the Sales advisor batches, a map below ``workers * 4`` tasks
#: loses to the parent running the loop itself.
MIN_TASKS_PER_WORKER = 4


class ParallelEngine:
    """Fans tasks over a pool of forked workers, in order.

    Args:
        workers: pool size; 0 = one per CPU; 1 = always sequential.
        min_batch: smallest batch worth paying fork/pickle overhead for;
            shorter batches run sequentially even inside a session.
        force_parallel: fan out whenever ``workers > 1`` even on a
            single effective CPU and for sub-threshold batches (the
            identity tests use this to exercise the pool everywhere);
            ``None`` reads the ``REPRO_FORCE_PARALLEL=1`` environment
            escape hatch.
    """

    def __init__(self, workers: int = 1, min_batch: int = 2,
                 keep_alive: bool = True,
                 force_parallel: bool | None = None) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = default_workers() if workers == 0 else workers
        self.min_batch = min_batch
        if force_parallel is None:
            force_parallel = os.environ.get("REPRO_FORCE_PARALLEL") == "1"
        self.force_parallel = force_parallel
        #: keep the worker pool alive between sessions so a later
        #: session with the same context reuses it instead of re-forking
        #: (False restores the fork-per-session behavior).
        self.keep_alive = keep_alive
        self._pool: ProcessPoolExecutor | None = None
        #: shared-memory sample store this engine owns (see
        #: :meth:`share_samples`); unlinked at :meth:`shutdown`.
        self._shared_store = None
        self._session_context = None
        #: context the dormant pool's workers were forked against.
        self._pool_context = None
        #: parent state advanced since the pool forked (mark_dirty);
        #: the next session re-forks unless it opts into staleness.
        self._dirty = False
        #: instrumentation: (parallel maps, sequential maps, tasks fanned)
        self.parallel_maps = 0
        self.sequential_maps = 0
        self.tasks_dispatched = 0
        self.pools_forked = 0
        self.pools_reused = 0

    # ------------------------------------------------------------------
    @property
    def parallel(self) -> bool:
        """Whether this engine can ever fan out.

        ``workers > 1`` and a usable ``fork`` are necessary; beyond
        that the engine degrades to sequential when the process is
        effectively single-CPU — forked workers there time-slice one
        core and the fan-out *loses* to the in-process loop (pickle +
        scheduling overhead with zero concurrency).  ``force_parallel``
        overrides the degrade for tests and measurements.
        """
        if self.workers <= 1 or not fork_available():
            return False
        if self.force_parallel:
            return True
        return effective_cpu_count() > 1

    @property
    def in_session(self) -> bool:
        return self._session_context is not None

    @property
    def has_pool(self) -> bool:
        """Whether a dormant (or active) worker pool currently exists."""
        return self._pool is not None

    @property
    def pool_context(self):
        """The context object the current pool's workers were forked
        against (None without a pool) — what session-affinity layers
        check before counting on a warm reuse."""
        return self._pool_context

    # ------------------------------------------------------------------
    def mark_dirty(self) -> None:
        """Record that parent state the tasks depend on has advanced
        past what the dormant pool's workers inherited: the next
        session re-forks instead of reusing the pool (unless it opens
        with ``stale_ok=True``)."""
        self._dirty = True

    def share_samples(self, manager) -> int:
        """Move ``manager``'s materialized sample bytes into a
        shared-memory segment the engine's workers will map at fork.

        No-op (returns 0) when the engine cannot fan out — sequential
        runs keep their heap-resident lists and pay nothing.  The
        engine owns the segment: it is destroyed at :meth:`shutdown`,
        which must therefore outlive every map that reads the samples.
        """
        if not self.parallel:
            return 0
        from repro.parallel.shm import SharedSamplePages

        store = SharedSamplePages()
        published = manager.share_samples(store)
        if not published:
            store.close(unlink=True)
            return 0
        # A prior store may still back an earlier manager; release it
        # only after the new one is live.
        self._release_shared()
        self._shared_store = store
        return published

    @property
    def shared_store(self):
        """The live shared sample store (None when not sharing)."""
        return self._shared_store

    def _release_shared(self) -> None:
        store, self._shared_store = self._shared_store, None
        if store is not None:
            store.close(unlink=True)

    def shutdown(self) -> None:
        """Release the dormant worker pool (if any) and the shared
        sample segment.  Owners call this when their run ends; the
        engine stays usable — a later session simply forks a fresh
        pool."""
        self._shutdown_pool()
        self._release_shared()

    def _shutdown_pool(self) -> None:
        pool, self._pool = self._pool, None
        self._pool_context = None
        # Drop the fork slot too: ids of collected engines can be
        # reused, and a new engine must never inherit a stale context.
        _FORK_CONTEXTS.pop(id(self), None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    @contextmanager
    def session(self, context, stale_ok: bool = False):
        """Open a worker pool whose processes snapshot the parent *now*.

        Tasks mapped with this ``context`` run on the pool; any other
        context (e.g. a nested estimator batch inside an advisor
        session) falls back to sequential execution, because the inner
        context's state may postdate the fork.  Nested sessions and
        sequential engines are transparent no-ops.

        With ``keep_alive`` the pool survives session exit, and a later
        session with the *same context object* reuses it — its workers
        and their inherited state — instead of re-forking, unless
        :meth:`mark_dirty` was called in between.  ``stale_ok`` opts a
        session into reuse even past a dirty mark, for tasks that are
        pure functions of fork-invariant state (e.g. SampleCF builds,
        which depend only on deterministic samples) — the tuning
        service's warm lanes extend this to whole reruns whose wiring
        signature matches the pool's.
        """
        if not self.parallel or self.in_session:
            yield self
            return
        if self._pool is not None and (
            self._pool_context is not context
            or (self._dirty and not stale_ok)
        ):
            self._shutdown_pool()
        if self._pool is None:
            _FORK_CONTEXTS[id(self)] = context
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"),
            )
            self._pool_context = context
            self._dirty = False
            self.pools_forked += 1
        else:
            self.pools_reused += 1
        self._session_context = context
        try:
            yield self
        finally:
            self._session_context = None
            if not self.keep_alive:
                self._shutdown_pool()

    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable[[object, T], R],
        items: Iterable[T],
        context,
    ) -> list[R]:
        """``[fn(context, item) for item in items]``, possibly fanned
        out, always in input order.

        Runs on the pool only when a session is active for this exact
        ``context``; otherwise sequentially in the parent.  A pool that
        dies mid-map (e.g. a worker OOM-killed) is retried sequentially.
        """
        items = list(items)
        # Below the calibrated floor the per-task pickle/queue overhead
        # outweighs the fan-out even with real concurrency; forced
        # engines keep the raw min_batch so identity tests can exercise
        # tiny parallel maps.
        floor = self.min_batch
        if not self.force_parallel:
            floor = max(floor, self.workers * MIN_TASKS_PER_WORKER)
        if (
            self._pool is None
            or context is not self._session_context
            or len(items) < floor
        ):
            self.sequential_maps += 1
            return [fn(context, item) for item in items]
        # Re-assert this engine's slot on every parallel map: the pool
        # forks workers lazily as submissions arrive, so any worker
        # forked during this map must inherit this session's context.
        # Each engine writes only its own id-keyed slot, so engines on
        # concurrent scheduler lanes cannot clobber each other.
        _FORK_CONTEXTS[id(self)] = context
        payloads = [(id(self), fn, item) for item in items]
        chunksize = max(1, len(items) // (self.workers * 4))
        try:
            results = list(self._pool.map(_invoke, payloads, chunksize=chunksize))
        except BrokenProcessPool:
            self._recover_pool()
            self.sequential_maps += 1
            return [fn(context, item) for item in items]
        except Exception:
            # A worker task raised.  Propagating alone would leak the
            # pool's queued work: the executor keeps chewing the
            # remaining payloads (and a broken one keeps failing every
            # later map) until the session closes.  Tear the pool down,
            # cancelling what hasn't started, and start a fresh one so
            # the session stays usable for callers that catch the error.
            self._recover_pool()
            raise
        self.parallel_maps += 1
        self.tasks_dispatched += len(items)
        return results

    def _recover_pool(self) -> None:
        """Shut down the session's pool (cancelling queued tasks) and
        replace it with a fresh fork of the same session context."""
        self._shutdown_pool()
        if self._session_context is None:
            return
        _FORK_CONTEXTS[id(self)] = self._session_context
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context("fork"),
        )
        self._pool_context = self._session_context
        self.pools_forked += 1

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "workers": self.workers,
            "fork_available": fork_available(),
            "effective_cpus": effective_cpu_count(),
            "force_parallel": self.force_parallel,
            "degraded_sequential": self.workers > 1 and not self.parallel,
            "parallel_maps": self.parallel_maps,
            "sequential_maps": self.sequential_maps,
            "tasks_dispatched": self.tasks_dispatched,
            "pools_forked": self.pools_forked,
            "pools_reused": self.pools_reused,
            "shared_samples": (
                self._shared_store.stats()
                if self._shared_store is not None else None
            ),
        }


class DirtyRelay:
    """Engine stand-in for estimators whose advisor run shares a warm,
    service-owned pool: forwards :meth:`mark_dirty` to the real engine
    (so the within-run re-fork discipline stays intact) but reports
    ``parallel=False``, so estimator-context sessions can never open —
    an estimator session would swap the pool's fork context and churn
    the warm pool the service is trying to keep across requests.
    """

    parallel = False
    in_session = False

    def __init__(self, engine: ParallelEngine) -> None:
        self.engine = engine

    def mark_dirty(self) -> None:
        self.engine.mark_dirty()

    def shutdown(self) -> None:  # estimators never own the real pool
        return None
