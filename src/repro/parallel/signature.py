"""Stable content signatures for cross-process and on-disk cache keys.

Python's builtin ``hash()`` is randomized per process (PYTHONHASHSEED),
so any cache that outlives a process — or is shared between the advisor
and its worker processes — needs explicit, deterministic keys.  The
functions here derive those keys from the *content* of the objects:
an index signature spells out every field that can change a size or a
cost (table, kind, columns, compression method, filter, MV definition),
and a sample fingerprint digests the sampled data plus the sampling
seed, so a cache entry can never be replayed against different data.
"""

from __future__ import annotations

import hashlib

from repro.physical.configuration import Configuration
from repro.physical.index_def import IndexDef
from repro.workload.query import SelectQuery, Statement


def index_identity(index: IndexDef) -> tuple:
    """Every field of an index the size/cost models can observe, as a
    hashable tuple — in particular the compression method, so two
    hypothetical structures that differ only in method can never share
    a cache entry.

    This is the single source of truth for index identity: the what-if
    cost cache uses the tuple directly (hot path) and
    :func:`index_signature` renders it for persistent string keys, so
    the two can never drift apart.

    The tuple is cached on the (frozen, hence content-stable) IndexDef
    instance: delta recosting builds identity-keyed signatures for
    every candidate of every sweep, so this is one of the hottest
    pure functions in an advisor run.
    """
    cached = index.__dict__.get("_identity_cache")
    if cached is not None:
        return cached
    ident = (
        index.table,
        index.kind.value,
        index.key_columns,
        index.included_columns,
        index.method.value,
        index.filter,
        index.mv,
    )
    object.__setattr__(index, "_identity_cache", ident)
    return ident


def index_signature(index: IndexDef) -> str:
    """Canonical string identity of an index definition (the rendered
    form of :func:`index_identity`)."""
    table, kind, key, incl, method, filt, mv = index_identity(index)
    parts = [
        "tbl=" + table,
        "kind=" + kind,
        "key=" + ",".join(key),
        "incl=" + ",".join(incl),
        "method=" + method,
    ]
    if filt is not None:
        parts.append("filter=" + repr(filt))
    if mv is not None:
        parts.append("mv=" + repr(mv))
    return ";".join(parts)


def sized_index_signature(
    index: IndexDef, est_bytes: float, est_rows: float
) -> str:
    """An index signature extended with the estimated size the cost
    model would observe.  What-if cost entries are keyed on these, so a
    persisted cost can never be replayed against size estimates other
    than the ones it was computed from (e.g. a cache warmed under a
    different sampling seed or accuracy constraint)."""
    return f"{index_signature(index)}@bytes={est_bytes!r};rows={est_rows!r}"


def statement_signature(statement: Statement) -> str:
    """Canonical string identity of a workload statement."""
    if isinstance(statement, SelectQuery):
        return "select;" + repr(statement)
    return type(statement).__name__.lower() + ";" + repr(statement)


def config_signature(config: Configuration) -> str:
    """Canonical identity of a configuration: the sorted member
    signatures (order-independent, method-inclusive)."""
    return "|".join(sorted(index_signature(ix) for ix in config))


def _digest(material: bytes) -> str:
    return hashlib.sha256(material).hexdigest()


def sample_fingerprint(manager) -> str:
    """Digest of everything the sampling layer's output depends on.

    Covers the sampling seed, the minimum-sample-row clamp, and each
    table's schema and row content.  Any change — regenerated data, a
    different scale or skew, another seed — yields a new fingerprint,
    which invalidates every persisted estimate derived from the old
    samples (their keys simply never match again).

    Deliberately exact (hashes every row): the one-time O(rows) scan
    per estimator is small next to a SampleCF batch, and it buys a
    hard guarantee that a cache entry can never be replayed against
    modified data — a probabilistic subsample would trade that away.

    Args:
        manager: a :class:`~repro.sampling.sample_manager.SampleManager`.
    """
    h = hashlib.sha256()
    h.update(f"seed={manager.seed};min_rows={manager.min_sample_rows};".encode())
    for table in sorted(manager.database.tables, key=lambda t: t.name):
        h.update(f"table={table.name};rows={table.num_rows};".encode())
        h.update(",".join(table.column_names).encode())
        for row in table.iter_rows():
            h.update(repr(row).encode())
    return h.hexdigest()
