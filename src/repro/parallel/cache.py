"""EstimationCache: a persistent, content-addressed size-estimate cache.

Size estimation is the advisor's dominant cost on estimation-heavy
workloads: every compressed candidate needs a SampleCF build or a
deduction.  Estimates are pure functions of (index definition, sampled
data, accuracy constraint), so they can be reused across advisor runs,
budget sweeps and benchmark reruns.  This cache keys each estimate on

    index signature x compression method x sample fingerprint x (e, q)

(the method is part of the index signature and is *also* stored as an
explicit field, so an entry can never alias two structures that differ
only in compression), and persists entries as JSON so a later process
can skip the work entirely.

Semantics: a hit replays the estimate that an identical earlier request
produced.  A fully warm cache therefore reproduces the earlier run's
recommendations exactly; a partially warm cache may shrink later
estimation batches, which can steer deduction planning differently than
a cold run — still a valid estimate, just not bit-for-bit the cold one.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ReproError
from repro.parallel.signature import index_signature
from repro.physical.index_def import IndexDef

if TYPE_CHECKING:  # pragma: no cover - import cycle with repro.sizeest
    from repro.sizeest.samplecf import SizeEstimate

CACHE_FILE = "estimates.json"
_FORMAT_VERSION = 1


class EstimationCache:
    """Content-addressed cache of :class:`SizeEstimate` records.

    Args:
        path: directory to persist into (created on first save); None
            keeps the cache in memory only.
    """

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = Path(path) if path is not None else None
        if self.path is not None and self.path.exists() \
                and not self.path.is_dir():
            # Fail at construction, not at the first save deep inside a
            # tuning run.
            raise ReproError(
                f"cache path {self.path} exists and is not a directory"
            )
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._entries: dict[str, dict] = {}
        self._loaded_entries: dict[str, dict] = {}
        if self.path is not None:
            self._loaded_entries = self._read_file()
            self._entries.update(self._loaded_entries)

    # ------------------------------------------------------------------
    @property
    def file(self) -> Path | None:
        return self.path / CACHE_FILE if self.path is not None else None

    def _read_file(self) -> dict[str, dict]:
        file = self.file
        if file is None or not file.exists():
            return {}
        try:
            payload = json.loads(file.read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        if payload.get("version") != _FORMAT_VERSION:
            return {}
        entries = payload.get("entries")
        return entries if isinstance(entries, dict) else {}

    # ------------------------------------------------------------------
    @staticmethod
    def key(index: IndexDef, fingerprint: str, e: float, q: float) -> str:
        return f"{index_signature(index)}|fp={fingerprint}|e={e!r}|q={q!r}"

    def get(
        self, index: IndexDef, fingerprint: str, e: float, q: float
    ) -> "SizeEstimate | None":
        """The cached estimate for an identical earlier request, or None."""
        from repro.sizeest.error_model import ErrorRV
        from repro.sizeest.samplecf import SizeEstimate

        record = self._entries.get(self.key(index, fingerprint, e, q))
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return SizeEstimate(
            index=index,
            est_bytes=record["est_bytes"],
            compression_fraction=record["compression_fraction"],
            source=record["source"],
            error=ErrorRV(mean=record["error_mean"], var=record["error_var"]),
            cost=record["cost"],
            fraction=record.get("fraction", 0.0),
        )

    def put(
        self,
        index: IndexDef,
        fingerprint: str,
        e: float,
        q: float,
        estimate: "SizeEstimate",
    ) -> None:
        self._entries[self.key(index, fingerprint, e, q)] = {
            "method": index.method.value,
            "est_bytes": estimate.est_bytes,
            "compression_fraction": estimate.compression_fraction,
            "source": estimate.source,
            "error_mean": estimate.error.mean,
            "error_var": estimate.error.var,
            "cost": estimate.cost,
            "fraction": estimate.fraction,
        }
        self.stores += 1

    # ------------------------------------------------------------------
    def save(self) -> None:
        """Persist atomically, merging with concurrent writers.

        Entries are immutable (same key -> same value), so merge order
        does not matter; the re-read + atomic replace only prevents one
        process from dropping another's fresh entries.  A no-op when
        every entry is already on disk, so per-batch save calls against
        a large warm cache don't redo O(entries) JSON work.
        """
        if self.path is None:
            return
        if all(key in self._loaded_entries for key in self._entries):
            return
        self.path.mkdir(parents=True, exist_ok=True)
        merged = self._read_file()
        merged.update(self._entries)
        payload = {"version": _FORMAT_VERSION, "entries": merged}
        fd, tmp = tempfile.mkstemp(
            dir=self.path, prefix=".estimates-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self.file)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._loaded_entries = dict(merged)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
        }
