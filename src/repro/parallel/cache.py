"""Persistent, content-addressed caches for the advisor's two replayable
computations: size estimates and what-if costs.

Size estimation is the advisor's dominant cost on estimation-heavy
workloads; what-if costing dominates enumeration-heavy ones (budget
sweeps re-cost the same statement x configuration pairs run after run).
Both computations are pure functions of explicitly enumerable inputs, so
both can be persisted and replayed across processes and runs:

* :class:`EstimationCache` keys each :class:`SizeEstimate` on

      index signature x compression method x sample fingerprint x (e, q)

  (the method is part of the index signature and is *also* stored as an
  explicit field, so an entry can never alias two structures that differ
  only in compression).  Semantics: a hit replays the estimate that an
  identical earlier request produced.  A fully warm cache therefore
  reproduces the earlier run's recommendations exactly; a partially warm
  cache may shrink later estimation batches, which can steer deduction
  planning differently than a cold run — still a valid estimate, just
  not bit-for-bit the cold one.

* :class:`CostCache` keys each what-if :class:`CostBreakdown` on

      statement signature x relevant structures *with their estimated
      sizes* x context fingerprint (data + accuracy + cost constants)

  Because the estimated bytes/rows of every relevant structure are part
  of the key, a hit is always consistent with the sizes the current run
  would feed the cost model: costing is per-(statement, configuration)
  pure, so — unlike size estimates — a cost-cache hit can *never* steer
  a run onto a different result, warm or cold.

Both caches persist as JSON in the same cache directory and merge
concurrently-written entries on save, so forked sweep workers can share
one directory.  :meth:`fork_view` hands each run in a sweep its own
overlay of the pre-sweep snapshot, which keeps sharded and sequential
sweeps byte-identical (a run never observes a sibling's fresh entries).
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.errors import ReproError
from repro.parallel.signature import (
    index_signature,
    sized_index_signature,
    statement_signature,
)
from repro.physical.index_def import IndexDef

if TYPE_CHECKING:  # pragma: no cover - import cycle with repro.sizeest
    from repro.optimizer.statement_cost import CostBreakdown
    from repro.sizeest.samplecf import SizeEstimate
    from repro.workload.query import Statement

CACHE_FILE = "estimates.json"
COST_CACHE_FILE = "costs.json"
_FORMAT_VERSION = 1

#: fault-injection hook (see :mod:`repro.service.faults`): rebound to
#: that module's ``fire`` when a plan is installed, None otherwise.
#: Declared here (instead of importing the service package) so cache
#: saves stay import-cycle-free and cost one ``is None`` check.
FAULT_HOOK = None

#: write errors treated as disk pressure: the save is skipped, the
#: cache flips its ``degraded`` flag (the service surfaces it via
#: ``/healthz``), and the next save retries — the caches are pure
#: replay state, so losing a save costs recomputation, never
#: correctness.
_DEGRADED_ERRNOS = frozenset({errno.ENOSPC, errno.EIO})


class _PersistentJsonCache:
    """Shared machinery of the persistent caches: a string-keyed dict of
    JSON records with atomic merge-on-save, hit/miss accounting, and
    per-run snapshot views.

    Args:
        path: directory to persist into (created on first save); None
            keeps the cache in memory only.
    """

    #: file name inside the cache directory; set by subclasses.
    FILE = "cache.json"

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = Path(path) if path is not None else None
        if self.path is not None and self.path.exists() \
                and not self.path.is_dir():
            # Fail at construction, not at the first save deep inside a
            # tuning run.
            raise ReproError(
                f"cache path {self.path} exists and is not a directory"
            )
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: disk-pressure degradation: True after a save failed with
        #: ``ENOSPC``/``EIO``; cleared by the next save that succeeds.
        self.degraded = False
        self.save_errors = 0
        #: serializes fork_view/absorb/save against each other — the
        #: tuning service's per-context lanes snapshot and re-absorb
        #: the *shared* caches from different threads concurrently.
        #: (Per-entry get/put stay unlocked: runs only ever touch their
        #: own fork views, never a shared instance, on hot paths.)
        self._mutate_lock = threading.Lock()
        self._entries: dict[str, dict] = {}
        self._loaded_entries: dict[str, dict] = {}
        if self.path is not None:
            self._loaded_entries = self._read_file()
            self._entries.update(self._loaded_entries)

    # ------------------------------------------------------------------
    @property
    def file(self) -> Path | None:
        return self.path / type(self).FILE if self.path is not None else None

    def _read_file(self) -> dict[str, dict]:
        file = self.file
        if file is None or not file.exists():
            return {}
        try:
            payload = json.loads(file.read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        if payload.get("version") != _FORMAT_VERSION:
            return {}
        entries = payload.get("entries")
        return entries if isinstance(entries, dict) else {}

    # ------------------------------------------------------------------
    def _lookup(self, key: str) -> dict | None:
        record = self._entries.get(key)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def _store(self, key: str, record: dict) -> None:
        self._entries[key] = record
        self.stores += 1

    # ------------------------------------------------------------------
    def fork_view(self) -> "_PersistentJsonCache":
        """A per-run overlay of this cache's current in-memory snapshot.

        The view starts from exactly the entries this cache holds *now*
        (no file re-read, so entries persisted by concurrent runs stay
        invisible), accumulates its own puts, and saves them to the same
        directory.  Sweep orchestration hands one view to every run:
        each run then sees the identical pre-sweep state whether it
        executes in the parent or in a forked worker, which is what
        keeps sharded and sequential sweeps byte-identical.
        """
        with self._mutate_lock:
            view = type(self)(None)
            view.path = self.path
            view._entries = dict(self._entries)
            view._loaded_entries = dict(self._loaded_entries)
            return view

    def absorb(self, view: "_PersistentJsonCache") -> int:
        """Merge a view's entries back into this cache (the reverse of
        :meth:`fork_view`), returning how many were new.

        Entries are immutable (same key -> same value), so absorption
        only ever *adds* keys; the tuning service uses this to let a
        completed run warm the next one where that is provably safe
        (what-if cost entries — a cost hit can never steer a run)."""
        added = 0
        with self._mutate_lock:
            for key, record in view._entries.items():
                if key not in self._entries:
                    self._entries[key] = record
                    added += 1
        return added

    # ------------------------------------------------------------------
    def save(self) -> None:
        """Persist atomically, merging with concurrent writers.

        Entries are immutable (same key -> same value), so merge order
        does not matter; the re-read + atomic replace only prevents one
        process from dropping another's fresh entries, and an exclusive
        advisory lock serializes the read-merge-replace so two sweep
        workers saving simultaneously cannot lose each other's updates
        (on platforms without ``fcntl`` the lock degrades to the
        unlocked merge).  A no-op when every entry is already on disk,
        so per-batch save calls against a large warm cache don't redo
        O(entries) JSON work.

        Disk pressure (``ENOSPC``/``EIO``) does not raise: the save is
        skipped, ``degraded`` flips (probe-and-recover — the next save
        retries and clears it), and the run continues on memory alone;
        cache entries are pure replay state, so the cost is
        recomputation, never correctness.
        """
        if self.path is None:
            return
        with self._mutate_lock:
            if all(key in self._loaded_entries for key in self._entries):
                return
            try:
                if FAULT_HOOK is not None:
                    FAULT_HOOK("cache.save", file=type(self).FILE)
                self.path.mkdir(parents=True, exist_ok=True)
                lock_fh = self._acquire_lock()
                try:
                    merged = self._read_file()
                    merged.update(self._entries)
                    payload = {
                        "version": _FORMAT_VERSION, "entries": merged
                    }
                    fd, tmp = tempfile.mkstemp(
                        dir=self.path, prefix=f".{type(self).FILE}-",
                        suffix=".tmp"
                    )
                    try:
                        with os.fdopen(fd, "w") as fh:
                            json.dump(payload, fh)
                        os.replace(tmp, self.file)
                    except BaseException:
                        try:
                            os.unlink(tmp)
                        except OSError:
                            pass
                        raise
                finally:
                    if lock_fh is not None:
                        lock_fh.close()
            except OSError as exc:
                if exc.errno not in _DEGRADED_ERRNOS:
                    raise
                self.degraded = True
                self.save_errors += 1
                return
            self._loaded_entries = dict(merged)
            self.degraded = False

    def _acquire_lock(self):
        """Exclusive advisory lock on ``<FILE>.lock`` (held until the
        returned handle is closed), or None when unavailable."""
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX
            return None
        try:
            lock_fh = open(self.path / f".{type(self).FILE}.lock", "a")
        except OSError:  # pragma: no cover - exotic filesystems
            return None
        try:
            fcntl.flock(lock_fh, fcntl.LOCK_EX)
        except OSError:  # pragma: no cover - exotic filesystems
            lock_fh.close()
            return None
        return lock_fh

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
            "degraded": self.degraded,
            "save_errors": self.save_errors,
        }


class EstimationCache(_PersistentJsonCache):
    """Content-addressed cache of :class:`SizeEstimate` records."""

    FILE = CACHE_FILE

    # ------------------------------------------------------------------
    @staticmethod
    def key(index: IndexDef, fingerprint: str, e: float, q: float) -> str:
        return f"{index_signature(index)}|fp={fingerprint}|e={e!r}|q={q!r}"

    def get(
        self, index: IndexDef, fingerprint: str, e: float, q: float
    ) -> "SizeEstimate | None":
        """The cached estimate for an identical earlier request, or None."""
        from repro.sizeest.error_model import ErrorRV
        from repro.sizeest.samplecf import SizeEstimate

        record = self._lookup(self.key(index, fingerprint, e, q))
        if record is None:
            return None
        return SizeEstimate(
            index=index,
            est_bytes=record["est_bytes"],
            compression_fraction=record["compression_fraction"],
            source=record["source"],
            error=ErrorRV(mean=record["error_mean"], var=record["error_var"]),
            cost=record["cost"],
            fraction=record.get("fraction", 0.0),
        )

    def put(
        self,
        index: IndexDef,
        fingerprint: str,
        e: float,
        q: float,
        estimate: "SizeEstimate",
    ) -> None:
        self._store(self.key(index, fingerprint, e, q), {
            "method": index.method.value,
            "est_bytes": estimate.est_bytes,
            "compression_fraction": estimate.compression_fraction,
            "source": estimate.source,
            "error_mean": estimate.error.mean,
            "error_var": estimate.error.var,
            "cost": estimate.cost,
            "fraction": estimate.fraction,
        })


class CostCache(_PersistentJsonCache):
    """Content-addressed cache of what-if :class:`CostBreakdown` records.

    The key spells out everything the cost model can observe: the
    statement, each relevant structure's method-inclusive signature
    *with its estimated (bytes, rows)*, and a context fingerprint that
    digests the data, the accuracy constraint behind the sizes, and the
    cost constants.  Two hypothetical configurations that differ only in
    compression method therefore can never alias one entry, and an entry
    computed against one set of size estimates can never be replayed
    against another.

    Persisted records keep ``total``/``io``/``cpu``/``used_mv``; access
    ``plans`` are not persisted (a replayed breakdown carries an empty
    plan tuple — the advisor consumes totals only).
    """

    FILE = COST_CACHE_FILE

    # ------------------------------------------------------------------
    @staticmethod
    def key(
        statement: "Statement",
        sized_indexes: Iterable[tuple[IndexDef, float, float]],
        context: str,
    ) -> str:
        """Digest of ``statement x sorted sized-structure signatures x
        context`` (hashed: a sweep persists tens of thousands of cost
        entries, and the spelled-out material runs ~half a KiB each).

        Args:
            statement: the statement being costed.
            sized_indexes: ``(index, est_bytes, est_rows)`` for every
                structure the statement's cost can depend on.
            context: fingerprint of run-level cost inputs (sampled data,
                accuracy constraint, cost constants).
        """
        return CostCache.key_from_signatures(
            statement,
            [
                sized_index_signature(ix, est_bytes, est_rows)
                for ix, est_bytes, est_rows in sized_indexes
            ],
            context,
        )

    @staticmethod
    def key_from_signatures(
        statement: "Statement",
        sized_signatures: Iterable[str],
        context: str,
    ) -> str:
        """Same key, from precomputed :func:`sized_index_signature`
        strings (the optimizer memoizes them per structure)."""
        material = (
            statement_signature(statement)
            + "||" + "|".join(sorted(sized_signatures))
            + "||ctx=" + context
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def get(self, key: str) -> "CostBreakdown | None":
        """The replayed breakdown for an identical earlier costing, or
        None (``plans`` is empty on a replay)."""
        replayed = self.get_with_plans(key)
        return replayed[0] if replayed is not None else None

    def get_with_plans(
        self, key: str
    ) -> "tuple[CostBreakdown, tuple[float, ...] | None] | None":
        """Replayed (breakdown, chosen per-table plan costs) — the plan
        costs feed the delta coster's access-path probes; None plan
        costs mean an entry persisted before they were recorded (or a
        statement that has none), which only disables probe reuse, not
        the replay itself."""
        from repro.optimizer.statement_cost import CostBreakdown

        record = self._lookup(key)
        if record is None:
            return None
        breakdown = CostBreakdown(
            total=record["total"],
            io=record["io"],
            cpu=record["cpu"],
            used_mv=record.get("used_mv", False),
        )
        plan_costs = record.get("plan_costs")
        return breakdown, (
            tuple(plan_costs) if plan_costs is not None else None
        )

    def put(self, key: str, breakdown: "CostBreakdown") -> None:
        record = {
            "total": breakdown.total,
            "io": breakdown.io,
            "cpu": breakdown.cpu,
            "used_mv": breakdown.used_mv,
        }
        if breakdown.plans:
            # JSON round-trips Python floats exactly (repr-based), so a
            # replayed plan cost compares bit-identically in probes.
            record["plan_costs"] = [plan.cost for plan in breakdown.plans]
        self._store(key, record)
