"""TPC-H-shaped dataset and workload.

Generates the eight TPC-H tables at a configurable (scaled-down) size,
with an optional Zipf skew parameter z (the paper evaluates z in
{0, 1, 3}), plus the 22-query analytic workload — each query expressed in
the library's SQL subset with the access patterns (date ranges, segment
filters, FK joins, group-bys) of its TPC-H counterpart — and the two bulk
load statements of the paper's update side.

``scale=1.0`` is 1/100 of TPC-H SF1 (lineitem 60k rows), which keeps the
byte-level compression measurements fast while preserving value
distributions.
"""

from __future__ import annotations

import random

from repro.catalog import (
    Column,
    Database,
    IntType,
    Table,
    char,
    DATE,
    decimal,
    varchar,
)
from repro.datasets.zipf import ZipfSampler
from repro.workload.parser import date_to_days, parse_statement
from repro.workload.query import Workload

INT32 = IntType(4)

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDEAST"]
NATIONS = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
]
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"]
SHIPMODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIPINSTRUCT = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
TYPES = [
    f"{a} {b} {c}"
    for a in ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
    for b in ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
    for c in ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
]

DATE_LO = date_to_days("1992-01-01")
DATE_HI = date_to_days("1998-08-02")


def tpch_database(scale: float = 1.0, z: float = 0.0,
                  seed: int = 19920101) -> Database:
    """Generate the TPC-H tables.

    Args:
        scale: 1.0 = lineitem 60k rows (1/100 of TPC-H SF1).
        z: Zipf skew of attribute value choices (0 = uniform, as TPC-H).
        seed: RNG seed (generation is fully deterministic).
    """
    rng = random.Random(seed)
    db = Database(f"tpch_s{scale}_z{z}")

    n_supplier = max(10, int(100 * scale))
    n_part = max(50, int(2000 * scale))
    n_customer = max(50, int(1500 * scale))
    n_orders = max(200, int(15000 * scale))
    n_lineitem = max(800, int(60000 * scale))
    n_partsupp = max(100, int(8000 * scale))

    def zipf(n: int) -> ZipfSampler:
        return ZipfSampler(n, z, rng)

    # region -----------------------------------------------------------
    region = Table(
        "region",
        [Column("r_regionkey", INT32), Column("r_name", char(12))],
        primary_key=("r_regionkey",),
    )
    for i, name in enumerate(REGIONS):
        region.append_row((i, name))
    db.add_table(region)

    # nation -----------------------------------------------------------
    nation = Table(
        "nation",
        [
            Column("n_nationkey", INT32),
            Column("n_name", char(16)),
            Column("n_regionkey", INT32),
        ],
        primary_key=("n_nationkey",),
    )
    for i, name in enumerate(NATIONS):
        nation.append_row((i, name, i % len(REGIONS)))
    db.add_table(nation)

    # supplier ----------------------------------------------------------
    supplier = Table(
        "supplier",
        [
            Column("s_suppkey", INT32),
            Column("s_name", char(18)),
            Column("s_nationkey", INT32),
            Column("s_acctbal", decimal()),
        ],
        primary_key=("s_suppkey",),
    )
    for i in range(n_supplier):
        supplier.append_row(
            (i, f"Supplier#{i:09d}", rng.randrange(len(NATIONS)),
             rng.randrange(-99999, 999999))
        )
    db.add_table(supplier)

    # part ---------------------------------------------------------------
    part = Table(
        "part",
        [
            Column("p_partkey", INT32),
            Column("p_name", varchar(32)),
            Column("p_brand", char(10)),
            Column("p_type", char(26)),
            Column("p_size", INT32),
            Column("p_retailprice", decimal()),
        ],
        primary_key=("p_partkey",),
    )
    brand_z = zipf(len(BRANDS))
    type_z = zipf(len(TYPES))
    for i in range(n_part):
        part.append_row(
            (
                i,
                f"part {i} colored",
                BRANDS[brand_z.sample()],
                TYPES[type_z.sample()],
                1 + rng.randrange(50),
                90000 + (i % 200) * 100 + rng.randrange(1000),
            )
        )
    db.add_table(part)

    # customer -----------------------------------------------------------
    customer = Table(
        "customer",
        [
            Column("c_custkey", INT32),
            Column("c_name", char(18)),
            Column("c_nationkey", INT32),
            Column("c_acctbal", decimal()),
            Column("c_mktsegment", char(10)),
        ],
        primary_key=("c_custkey",),
    )
    seg_z = zipf(len(SEGMENTS))
    for i in range(n_customer):
        customer.append_row(
            (
                i,
                f"Customer#{i:09d}",
                rng.randrange(len(NATIONS)),
                rng.randrange(-99999, 999999),
                SEGMENTS[seg_z.sample()],
            )
        )
    db.add_table(customer)

    # orders --------------------------------------------------------------
    orders = Table(
        "orders",
        [
            Column("o_orderkey", INT32),
            Column("o_custkey", INT32),
            Column("o_orderstatus", char(1)),
            Column("o_totalprice", decimal()),
            Column("o_orderdate", DATE),
            Column("o_orderpriority", char(16)),
            Column("o_clerk", char(16)),
            Column("o_shippriority", INT32),
        ],
        primary_key=("o_orderkey",),
    )
    cust_z = zipf(n_customer)
    date_z = zipf(DATE_HI - DATE_LO)
    prio_z = zipf(len(PRIORITIES))
    order_dates = []
    for i in range(n_orders):
        odate = DATE_LO + date_z.sample()
        order_dates.append(odate)
        orders.append_row(
            (
                i,
                cust_z.sample(),
                rng.choice("OFP"),
                10000 + rng.randrange(40000000),
                odate,
                PRIORITIES[prio_z.sample()],
                f"Clerk#{rng.randrange(max(10, n_orders // 15)):09d}",
                0,
            )
        )
    db.add_table(orders)

    # lineitem --------------------------------------------------------------
    lineitem = Table(
        "lineitem",
        [
            Column("l_orderkey", INT32),
            Column("l_partkey", INT32),
            Column("l_suppkey", INT32),
            Column("l_linenumber", INT32),
            Column("l_quantity", decimal()),
            Column("l_extendedprice", decimal()),
            Column("l_discount", decimal()),
            Column("l_tax", decimal()),
            Column("l_returnflag", char(1)),
            Column("l_linestatus", char(1)),
            Column("l_shipdate", DATE),
            Column("l_commitdate", DATE),
            Column("l_receiptdate", DATE),
            Column("l_shipinstruct", char(26)),
            Column("l_shipmode", char(10)),
        ],
        primary_key=("l_orderkey", "l_linenumber"),
    )
    part_z = zipf(n_part)
    supp_z = zipf(n_supplier)
    mode_z = zipf(len(SHIPMODES))
    line_per_order = max(1, n_lineitem // n_orders)
    produced = 0
    for okey in range(n_orders):
        if produced >= n_lineitem:
            break
        lines = 1 + rng.randrange(2 * line_per_order)
        odate = order_dates[okey]
        for ln in range(lines):
            if produced >= n_lineitem:
                break
            ship = min(DATE_HI, odate + 1 + rng.randrange(120))
            qty = 1 + rng.randrange(50)
            price = qty * (90000 + rng.randrange(10000))
            returned = "R" if rng.random() < 0.25 else "N"
            lineitem.append_row(
                (
                    okey,
                    part_z.sample(),
                    supp_z.sample(),
                    ln + 1,
                    qty * 100,
                    price,
                    rng.randrange(11),
                    rng.randrange(9),
                    returned,
                    "O" if ship > date_to_days("1995-06-17") else "F",
                    ship,
                    min(DATE_HI, ship + rng.randrange(30)),
                    min(DATE_HI, ship + rng.randrange(30)),
                    rng.choice(SHIPINSTRUCT),
                    SHIPMODES[mode_z.sample()],
                )
            )
            produced += 1
    db.add_table(lineitem)

    # partsupp ---------------------------------------------------------------
    partsupp = Table(
        "partsupp",
        [
            Column("ps_partkey", INT32),
            Column("ps_suppkey", INT32),
            Column("ps_availqty", INT32),
            Column("ps_supplycost", decimal()),
        ],
        primary_key=("ps_partkey", "ps_suppkey"),
    )
    for i in range(n_partsupp):
        partsupp.append_row(
            (
                i % n_part,
                (i * 7) % n_supplier,
                rng.randrange(10000),
                100 + rng.randrange(100000),
            )
        )
    db.add_table(partsupp)

    # foreign keys -------------------------------------------------------
    db.add_foreign_key("nation", "n_regionkey", "region", "r_regionkey")
    db.add_foreign_key("supplier", "s_nationkey", "nation", "n_nationkey")
    db.add_foreign_key("customer", "c_nationkey", "nation", "n_nationkey")
    db.add_foreign_key("orders", "o_custkey", "customer", "c_custkey")
    db.add_foreign_key("lineitem", "l_orderkey", "orders", "o_orderkey")
    db.add_foreign_key("lineitem", "l_partkey", "part", "p_partkey")
    db.add_foreign_key("lineitem", "l_suppkey", "supplier", "s_suppkey")
    db.add_foreign_key("partsupp", "ps_partkey", "part", "p_partkey")
    db.add_foreign_key("partsupp", "ps_suppkey", "supplier", "s_suppkey")
    return db


#: The 22 analytic statements (paper: "TPC-H ... 22 analytic queries"),
#: each capturing its TPC-H counterpart's indexable access pattern within
#: the library's SQL subset.
TPCH_QUERY_SQL: dict[str, str] = {
    "Q1": """SELECT l_returnflag, l_linestatus, SUM(l_quantity),
             SUM(l_extendedprice), COUNT(*) FROM lineitem
             WHERE l_shipdate <= DATE '1998-08-01'
             GROUP BY l_returnflag, l_linestatus""",
    "Q2": """SELECT s_name, MIN(ps_supplycost) FROM partsupp
             JOIN supplier ON ps_suppkey = s_suppkey
             WHERE ps_availqty > 5000 GROUP BY s_name""",
    "Q3": """SELECT l_orderkey, SUM(l_extendedprice) FROM lineitem
             JOIN orders ON l_orderkey = o_orderkey
             JOIN customer ON o_custkey = c_custkey
             WHERE c_mktsegment = 'BUILDING'
             AND o_orderdate < DATE '1995-03-15'
             AND l_shipdate > DATE '1995-03-15'
             GROUP BY l_orderkey""",
    "Q4": """SELECT o_orderpriority, COUNT(*) FROM orders
             WHERE o_orderdate BETWEEN DATE '1993-07-01' AND DATE '1993-09-30'
             GROUP BY o_orderpriority""",
    "Q5": """SELECT n_name, SUM(l_extendedprice) FROM lineitem
             JOIN orders ON l_orderkey = o_orderkey
             JOIN customer ON o_custkey = c_custkey
             JOIN nation ON c_nationkey = n_nationkey
             WHERE o_orderdate BETWEEN DATE '1994-01-01' AND DATE '1994-12-31'
             GROUP BY n_name""",
    "Q6": """SELECT SUM(l_extendedprice * l_discount) FROM lineitem
             WHERE l_shipdate BETWEEN DATE '1994-01-01' AND DATE '1994-12-31'
             AND l_discount BETWEEN 5 AND 7 AND l_quantity < 2400""",
    "Q7": """SELECT n_name, SUM(l_extendedprice) FROM lineitem
             JOIN supplier ON l_suppkey = s_suppkey
             JOIN nation ON s_nationkey = n_nationkey
             WHERE l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
             GROUP BY n_name""",
    "Q8": """SELECT o_orderdate, SUM(l_extendedprice) FROM lineitem
             JOIN orders ON l_orderkey = o_orderkey
             JOIN part ON l_partkey = p_partkey
             WHERE p_type = 'ECONOMY ANODIZED STEEL'
             AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
             GROUP BY o_orderdate""",
    "Q9": """SELECT n_name, SUM(l_extendedprice) FROM lineitem
             JOIN supplier ON l_suppkey = s_suppkey
             JOIN nation ON s_nationkey = n_nationkey
             GROUP BY n_name""",
    "Q10": """SELECT c_name, SUM(l_extendedprice) FROM lineitem
              JOIN orders ON l_orderkey = o_orderkey
              JOIN customer ON o_custkey = c_custkey
              WHERE o_orderdate BETWEEN DATE '1993-10-01' AND DATE '1993-12-31'
              AND l_returnflag = 'R' GROUP BY c_name""",
    "Q11": """SELECT ps_partkey, SUM(ps_supplycost * ps_availqty)
              FROM partsupp JOIN supplier ON ps_suppkey = s_suppkey
              WHERE s_nationkey = 7 GROUP BY ps_partkey""",
    "Q12": """SELECT l_shipmode, COUNT(*) FROM lineitem
              JOIN orders ON l_orderkey = o_orderkey
              WHERE l_shipmode IN ('MAIL', 'SHIP')
              AND l_receiptdate BETWEEN DATE '1994-01-01' AND DATE '1994-12-31'
              GROUP BY l_shipmode""",
    "Q13": """SELECT c_custkey, COUNT(*) FROM orders
              JOIN customer ON o_custkey = c_custkey
              GROUP BY c_custkey""",
    "Q14": """SELECT SUM(l_extendedprice * l_discount) FROM lineitem
              JOIN part ON l_partkey = p_partkey
              WHERE l_shipdate BETWEEN DATE '1995-09-01' AND DATE '1995-09-30'""",
    "Q15": """SELECT l_suppkey, SUM(l_extendedprice) FROM lineitem
              WHERE l_shipdate BETWEEN DATE '1996-01-01' AND DATE '1996-03-31'
              GROUP BY l_suppkey""",
    "Q16": """SELECT p_brand, p_type, COUNT(*) FROM partsupp
              JOIN part ON ps_partkey = p_partkey
              WHERE p_size IN (9, 19, 49) GROUP BY p_brand, p_type""",
    "Q17": """SELECT SUM(l_extendedprice) FROM lineitem
              JOIN part ON l_partkey = p_partkey
              WHERE p_brand = 'Brand#23' AND l_quantity < 1000""",
    "Q18": """SELECT c_name, o_orderdate, SUM(l_quantity) FROM lineitem
              JOIN orders ON l_orderkey = o_orderkey
              JOIN customer ON o_custkey = c_custkey
              WHERE o_totalprice > 30000000
              GROUP BY c_name, o_orderdate""",
    "Q19": """SELECT SUM(l_extendedprice) FROM lineitem
              JOIN part ON l_partkey = p_partkey
              WHERE p_brand = 'Brand#12' AND l_quantity BETWEEN 100 AND 1100
              AND l_shipmode IN ('AIR', 'REG AIR')""",
    "Q20": """SELECT s_name, COUNT(*) FROM partsupp
              JOIN supplier ON ps_suppkey = s_suppkey
              WHERE ps_availqty > 3000 GROUP BY s_name""",
    "Q21": """SELECT s_name, COUNT(*) FROM lineitem
              JOIN supplier ON l_suppkey = s_suppkey
              WHERE l_returnflag = 'R' AND l_receiptdate > DATE '1997-01-01'
              GROUP BY s_name""",
    "Q22": """SELECT c_nationkey, COUNT(*), SUM(c_acctbal) FROM customer
              WHERE c_acctbal > 700000 GROUP BY c_nationkey""",
}


def tpch_workload(
    database: Database,
    select_weight: float = 1.0,
    insert_weight: float = 1.0,
    bulk_fraction: float = 0.10,
) -> Workload:
    """The 22 queries plus the two fact-table bulk loads.

    Args:
        select_weight / insert_weight: the paper's SELECT-intensive vs
            INSERT-intensive workload knob.
        bulk_fraction: bulk-load size as a fraction of the fact tables.
    """
    workload = Workload()
    for name, sql in TPCH_QUERY_SQL.items():
        stmt = parse_statement(sql)
        stmt.validate(database)
        workload.add(stmt, weight=select_weight, name=name)
    n_line = int(database.table("lineitem").num_rows * bulk_fraction)
    n_ord = int(database.table("orders").num_rows * bulk_fraction)
    workload.add(
        parse_statement(f"INSERT INTO lineitem BULK {max(1, n_line)}"),
        weight=insert_weight,
        name="BULK_LINEITEM",
    )
    workload.add(
        parse_statement(f"INSERT INTO orders BULK {max(1, n_ord)}"),
        weight=insert_weight,
        name="BULK_ORDERS",
    )
    return workload
