"""Bundled datasets: TPC-H (with skew), Sales, TPC-DS-lite."""

from repro.datasets.sales import sales_database, sales_queries, sales_workload
from repro.datasets.tpch import TPCH_QUERY_SQL, tpch_database, tpch_workload
from repro.datasets.tpcds_lite import tpcds_lite_database
from repro.datasets.zipf import ZipfSampler

__all__ = [
    "ZipfSampler",
    "tpch_database",
    "tpch_workload",
    "TPCH_QUERY_SQL",
    "sales_database",
    "sales_workload",
    "sales_queries",
    "tpcds_lite_database",
]
