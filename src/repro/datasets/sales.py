"""The "Sales" workload: a synthetic stand-in for the paper's real-world
customer database (Appendix D.2: "a real sales database (Sales) which has
50 analytic queries and two bulk load statements on fact tables").

The paper does not publish the customer's schema, so this module builds a
star schema with the same *shape*: a wide sales fact table (with heavy
categorical redundancy — exactly what dictionary compression likes),
three dimensions, 50 parameterized analytic queries over 10 templates,
and two bulk loads.
"""

from __future__ import annotations

import random

from repro.catalog import Column, Database, IntType, Table, DATE, char, decimal
from repro.datasets.zipf import ZipfSampler
from repro.workload.parser import date_to_days, parse_statement
from repro.workload.query import Workload

INT32 = IntType(4)

STATES = ["CA", "NY", "TX", "WA", "FL", "IL", "MA", "GA", "OH", "NC"]
REGIONS = {"CA": "WEST", "WA": "WEST", "TX": "SOUTH", "FL": "SOUTH",
           "GA": "SOUTH", "NY": "EAST", "MA": "EAST", "IL": "MIDWEST",
           "OH": "MIDWEST", "NC": "EAST"}
CATEGORIES = ["ELECTRONICS", "GROCERY", "CLOTHING", "HOME", "SPORTS",
              "TOYS", "AUTO", "GARDEN"]
BRANDS = [f"BRAND_{i:02d}" for i in range(30)]
CHANNELS = ["STORE", "WEB", "PHONE", "PARTNER"]
PROMOS = ["NONE", "SPRING", "SUMMER", "FALL", "HOLIDAY"]
SEGMENTS = ["CONSUMER", "CORPORATE", "SMALLBIZ"]

DATE_LO = date_to_days("2007-01-01")
DATE_HI = date_to_days("2009-12-31")


def sales_database(scale: float = 1.0, z: float = 0.5,
                   seed: int = 20090101) -> Database:
    """Generate the Sales star schema.

    Args:
        scale: 1.0 = 40k fact rows.
        z: Zipf skew of categorical choices (real sales data is skewed).
        seed: RNG seed.
    """
    rng = random.Random(seed)
    db = Database(f"sales_s{scale}")

    n_stores = max(20, int(200 * scale))
    n_products = max(100, int(1500 * scale))
    n_customers = max(100, int(3000 * scale))
    n_sales = max(1000, int(40000 * scale))

    stores = Table(
        "stores",
        [
            Column("st_storekey", INT32),
            Column("st_name", char(16)),
            Column("st_city", char(16)),
            Column("st_state", char(2)),
            Column("st_region", char(8)),
        ],
        primary_key=("st_storekey",),
    )
    for i in range(n_stores):
        state = STATES[i % len(STATES)]
        stores.append_row(
            (i, f"Store {i:05d}", f"City{i % 40:03d}", state, REGIONS[state])
        )
    db.add_table(stores)

    products = Table(
        "products",
        [
            Column("pr_productkey", INT32),
            Column("pr_name", char(20)),
            Column("pr_category", char(16)),
            Column("pr_brand", char(12)),
            Column("pr_price", decimal()),
        ],
        primary_key=("pr_productkey",),
    )
    cat_z = ZipfSampler(len(CATEGORIES), z, rng)
    brand_z = ZipfSampler(len(BRANDS), z, rng)
    for i in range(n_products):
        products.append_row(
            (
                i,
                f"Product {i:06d}",
                CATEGORIES[cat_z.sample()],
                BRANDS[brand_z.sample()],
                500 + rng.randrange(50000),
            )
        )
    db.add_table(products)

    customers = Table(
        "customers",
        [
            Column("cu_custkey", INT32),
            Column("cu_name", char(18)),
            Column("cu_segment", char(10)),
            Column("cu_state", char(2)),
        ],
        primary_key=("cu_custkey",),
    )
    seg_z = ZipfSampler(len(SEGMENTS), z, rng)
    for i in range(n_customers):
        customers.append_row(
            (
                i,
                f"Customer {i:07d}",
                SEGMENTS[seg_z.sample()],
                STATES[rng.randrange(len(STATES))],
            )
        )
    db.add_table(customers)

    sales = Table(
        "sales",
        [
            Column("sa_salekey", IntType(8)),
            Column("sa_storekey", INT32),
            Column("sa_productkey", INT32),
            Column("sa_custkey", INT32),
            Column("sa_date", DATE),
            Column("sa_quantity", INT32),
            Column("sa_unitprice", decimal()),
            Column("sa_discount", decimal()),
            Column("sa_total", decimal()),
            Column("sa_promo", char(8)),
            Column("sa_channel", char(8)),
            Column("sa_status", char(1)),
        ],
        primary_key=("sa_salekey",),
    )
    store_z = ZipfSampler(n_stores, z, rng)
    prod_z = ZipfSampler(n_products, z, rng)
    cust_z = ZipfSampler(n_customers, z, rng)
    date_z = ZipfSampler(DATE_HI - DATE_LO, z / 2.0, rng)
    chan_z = ZipfSampler(len(CHANNELS), z, rng)
    promo_z = ZipfSampler(len(PROMOS), z, rng)
    for i in range(n_sales):
        qty = 1 + rng.randrange(12)
        price = 500 + rng.randrange(50000)
        discount = rng.choice((0, 0, 0, 5, 10, 15, 20))
        sales.append_row(
            (
                i,
                store_z.sample(),
                prod_z.sample(),
                cust_z.sample(),
                DATE_LO + date_z.sample(),
                qty,
                price,
                discount,
                qty * price * (100 - discount) // 100,
                PROMOS[promo_z.sample()],
                CHANNELS[chan_z.sample()],
                rng.choice("CCCCR"),
            )
        )
    db.add_table(sales)

    db.add_foreign_key("sales", "sa_storekey", "stores", "st_storekey")
    db.add_foreign_key("sales", "sa_productkey", "products", "pr_productkey")
    db.add_foreign_key("sales", "sa_custkey", "customers", "cu_custkey")
    return db


#: 10 query templates; 5 parameterizations each = the 50 analytic queries.
_TEMPLATES = [
    # 1. revenue by state in a quarter
    """SELECT st_state, SUM(sa_total) FROM sales
       JOIN stores ON sa_storekey = st_storekey
       WHERE sa_date BETWEEN DATE '{lo}' AND DATE '{hi}'
       GROUP BY st_state""",
    # 2. channel performance for a promo
    """SELECT sa_channel, SUM(sa_total), COUNT(*) FROM sales
       WHERE sa_promo = '{promo}' GROUP BY sa_channel""",
    # 3. category revenue in a date range
    """SELECT pr_category, SUM(sa_total) FROM sales
       JOIN products ON sa_productkey = pr_productkey
       WHERE sa_date BETWEEN DATE '{lo}' AND DATE '{hi}'
       GROUP BY pr_category""",
    # 4. discount impact scan
    """SELECT SUM(sa_unitprice * sa_quantity) FROM sales
       WHERE sa_discount >= {disc} AND sa_date >= DATE '{lo}'""",
    # 5. top customers of a segment
    """SELECT cu_custkey, SUM(sa_total) FROM sales
       JOIN customers ON sa_custkey = cu_custkey
       WHERE cu_segment = '{segment}' GROUP BY cu_custkey""",
    # 6. store daily totals
    """SELECT sa_date, SUM(sa_total) FROM sales
       WHERE sa_storekey = {store} GROUP BY sa_date ORDER BY sa_date""",
    # 7. brand revenue for a channel
    """SELECT pr_brand, SUM(sa_total) FROM sales
       JOIN products ON sa_productkey = pr_productkey
       WHERE sa_channel = '{channel}' GROUP BY pr_brand""",
    # 8. returns rate by region
    """SELECT st_region, COUNT(*) FROM sales
       JOIN stores ON sa_storekey = st_storekey
       WHERE sa_status = 'R' AND sa_date >= DATE '{lo}'
       GROUP BY st_region""",
    # 9. quantity histogram for a category month
    """SELECT sa_quantity, COUNT(*) FROM sales
       JOIN products ON sa_productkey = pr_productkey
       WHERE pr_category = '{category}'
       AND sa_date BETWEEN DATE '{lo}' AND DATE '{hi}'
       GROUP BY sa_quantity""",
    # 10. promo revenue by state
    """SELECT cu_state, SUM(sa_total) FROM sales
       JOIN customers ON sa_custkey = cu_custkey
       WHERE sa_promo = '{promo}' AND sa_discount > {disc}
       GROUP BY cu_state""",
]

_QUARTERS = [
    ("2007-01-01", "2007-03-31"),
    ("2007-07-01", "2007-09-30"),
    ("2008-01-01", "2008-03-31"),
    ("2008-10-01", "2008-12-31"),
    ("2009-04-01", "2009-06-30"),
]


def sales_queries() -> list[tuple[str, str]]:
    """The 50 (name, sql) analytic queries."""
    out: list[tuple[str, str]] = []
    for v in range(5):
        lo, hi = _QUARTERS[v]
        params = {
            "lo": lo,
            "hi": hi,
            "promo": PROMOS[1 + v % (len(PROMOS) - 1)],
            "disc": (5, 10, 15, 5, 10)[v],
            "segment": SEGMENTS[v % len(SEGMENTS)],
            "store": 3 + 7 * v,
            "channel": CHANNELS[v % len(CHANNELS)],
            "category": CATEGORIES[v % len(CATEGORIES)],
        }
        for ti, template in enumerate(_TEMPLATES):
            sql = template.format(**params)
            out.append((f"S{ti + 1:02d}_v{v + 1}", sql))
    return out


def sales_workload(
    database: Database,
    select_weight: float = 1.0,
    insert_weight: float = 1.0,
    bulk_fraction: float = 0.10,
) -> Workload:
    """The 50 analytic queries plus two bulk loads on the fact table."""
    workload = Workload()
    for name, sql in sales_queries():
        stmt = parse_statement(sql)
        stmt.validate(database)
        workload.add(stmt, weight=select_weight, name=name)
    n = max(1, int(database.table("sales").num_rows * bulk_fraction))
    workload.add(
        parse_statement(f"INSERT INTO sales BULK {n}"),
        weight=insert_weight,
        name="BULK_SALES_1",
    )
    workload.add(
        parse_statement(f"INSERT INTO sales BULK {max(1, n // 2)}"),
        weight=insert_weight,
        name="BULK_SALES_2",
    )
    return workload
