"""Zipf-distributed value sampling for skewed data generation.

The paper's Appendix C repeats its error analysis on skewed TPC-H
variants (Z=0, Z=1, Z=3); this module provides the skew knob.  Z=0
degenerates to uniform.
"""

from __future__ import annotations

import bisect
import random

from repro.errors import ReproError


class ZipfSampler:
    """Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^z.

    Args:
        n: domain size.
        z: skew parameter (0 = uniform).
        rng: random source; omit to derive one from ``seed``.
        shuffle: permute ranks so skew does not correlate with value
            order (hot values are spread over the domain).
        seed: explicit seed used when no ``rng`` is given, so every
            entry point is reproducible without sharing a generator.
    """

    DEFAULT_SEED = 20110829

    def __init__(self, n: int, z: float, rng: random.Random | None = None,
                 shuffle: bool = True, seed: int | None = None) -> None:
        if n <= 0:
            raise ReproError("ZipfSampler needs a positive domain size")
        if z < 0:
            raise ReproError("zipf skew must be >= 0")
        if rng is not None and seed is not None:
            raise ReproError("pass either rng or seed, not both")
        self.n = n
        self.z = z
        if rng is None:
            rng = random.Random(self.DEFAULT_SEED if seed is None else seed)
        self._rng = rng
        self._perm = list(range(n))
        if shuffle and z > 0:
            self._rng.shuffle(self._perm)
        if z == 0:
            self._cdf = None
        else:
            weights = [1.0 / (i + 1) ** z for i in range(n)]
            total = sum(weights)
            acc = 0.0
            cdf = []
            for w in weights:
                acc += w / total
                cdf.append(acc)
            cdf[-1] = 1.0
            self._cdf = cdf

    def sample(self) -> int:
        """One rank in 0..n-1 (permuted when shuffling is on)."""
        if self._cdf is None:
            return self._rng.randrange(self.n)
        u = self._rng.random()
        rank = bisect.bisect_left(self._cdf, u)
        return self._perm[min(rank, self.n - 1)]

    def sample_many(self, count: int) -> list[int]:
        return [self.sample() for _ in range(count)]
