"""TPC-DS-lite: a small slice of TPC-DS used to test the stability of the
SampleCF error fit across schemas (the paper's Table 2 includes a TPC-DS
row next to the skewed TPC-H variants)."""

from __future__ import annotations

import random

from repro.catalog import Column, Database, IntType, Table, DATE, char, decimal
from repro.datasets.zipf import ZipfSampler
from repro.workload.parser import date_to_days

INT32 = IntType(4)

ITEM_CATEGORIES = ["Books", "Music", "Home", "Sports", "Electronics",
                   "Children", "Men", "Women", "Shoes", "Jewelry"]


def tpcds_lite_database(scale: float = 1.0, z: float = 0.8,
                        seed: int = 20100101) -> Database:
    """Generate a 4-table TPC-DS subset (store_sales fact + 3 dims)."""
    rng = random.Random(seed)
    db = Database(f"tpcds_lite_s{scale}")

    n_items = max(100, int(1800 * scale))
    n_customers = max(100, int(2000 * scale))
    n_dates = 365 * 3
    n_sales = max(1000, int(50000 * scale))
    date_base = date_to_days("2000-01-01")

    item = Table(
        "item",
        [
            Column("i_item_sk", INT32),
            Column("i_item_id", char(16)),
            Column("i_category", char(12)),
            Column("i_brand", char(14)),
            Column("i_current_price", decimal()),
        ],
        primary_key=("i_item_sk",),
    )
    cat_z = ZipfSampler(len(ITEM_CATEGORIES), z, rng)
    for i in range(n_items):
        item.append_row(
            (
                i,
                f"ITEM{i:012d}",
                ITEM_CATEGORIES[cat_z.sample()],
                f"Brand {1 + i % 25:02d}",
                99 + rng.randrange(30000),
            )
        )
    db.add_table(item)

    date_dim = Table(
        "date_dim",
        [
            Column("d_date_sk", INT32),
            Column("d_date", DATE),
            Column("d_year", INT32),
            Column("d_moy", INT32),
            Column("d_dow", INT32),
        ],
        primary_key=("d_date_sk",),
    )
    for i in range(n_dates):
        days = date_base + i
        date_dim.append_row((i, days, 2000 + i // 365, 1 + (i // 30) % 12,
                             i % 7))
    db.add_table(date_dim)

    customer = Table(
        "customer",
        [
            Column("c_customer_sk", INT32),
            Column("c_customer_id", char(16)),
            Column("c_birth_year", INT32),
            Column("c_preferred_flag", char(1)),
        ],
        primary_key=("c_customer_sk",),
    )
    for i in range(n_customers):
        customer.append_row(
            (i, f"CUST{i:012d}", 1930 + rng.randrange(70),
             rng.choice("YN"))
        )
    db.add_table(customer)

    store_sales = Table(
        "store_sales",
        [
            Column("ss_ticket", IntType(8)),
            Column("ss_item_sk", INT32),
            Column("ss_customer_sk", INT32),
            Column("ss_sold_date_sk", INT32),
            Column("ss_quantity", INT32),
            Column("ss_list_price", decimal()),
            Column("ss_discount", decimal()),
            Column("ss_net_paid", decimal()),
            Column("ss_promo", char(8)),
        ],
        primary_key=("ss_ticket",),
    )
    item_z = ZipfSampler(n_items, z, rng)
    cust_z = ZipfSampler(n_customers, z, rng)
    date_z = ZipfSampler(n_dates, z / 2.0, rng)
    for i in range(n_sales):
        qty = 1 + rng.randrange(20)
        price = 99 + rng.randrange(30000)
        disc = rng.choice((0, 0, 100, 500))
        store_sales.append_row(
            (
                i,
                item_z.sample(),
                cust_z.sample(),
                date_z.sample(),
                qty,
                price,
                disc,
                max(0, qty * price - disc),
                rng.choice(("NONE", "SALE", "COUPON")),
            )
        )
    db.add_table(store_sales)

    db.add_foreign_key("store_sales", "ss_item_sk", "item", "i_item_sk")
    db.add_foreign_key("store_sales", "ss_customer_sk", "customer",
                       "c_customer_sk")
    db.add_foreign_key("store_sales", "ss_sold_date_sk", "date_dim",
                       "d_date_sk")
    return db
